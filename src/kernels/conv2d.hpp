#pragma once
// 2dconv benchmark (Section V-C): 3×3 discrete convolution where each tile
// owns one image row in its sequential region — "all accesses are local,
// except for cores working on windows that require data from two tiles"
// (the halo rows above and below).

#include <cstdint>

#include "core/cluster_config.hpp"
#include "kernels/kernel.hpp"

namespace mempool::kernels {

/// Build the 2dconv kernel over a (num_tiles × width) int32 image.
/// width must be divisible by cores_per_tile, and one input row + one output
/// row + the stacks must fit in a tile's sequential region.
KernelProgram build_conv2d(const ClusterConfig& cfg, uint32_t width = 256,
                           uint64_t seed = 43);

}  // namespace mempool::kernels
