// Tiled, DMA-fed matmul on the tcdm+l2 memory system (see matmul.hpp).
//
// All three matrices live in L2 (A m×k and Bt n×k row-major — B is stored
// transposed like the flat kernel — plus C m×n row-major), so the working
// set is bounded by the L2, not the 1 MiB L1. The (m/rb)·(n/cb) output
// blocks are processed one after another by the whole cluster:
//
//   in(b):  DMA A's rb×k panel and Bt's cb×k panel into SPM buffers
//   compute(b): every core computes rb·cb/P outputs (2x4 register blocking)
//   out(b): DMA the finished rb×cb block back into C (2-D strided)
//
// Double-buffered schedule (two SPM buffer sets, DMA programmed by core 0):
//
//   submit in(0)
//   for b in 0..NB-1:
//     wait                      # in(b) done, out(b-1) done
//     barrier
//     submit in(b+1), out(b-1)  # overlap with the compute below
//     compute block b
//     barrier
//   submit out(NB-1); wait; barrier
//
// The serialized variant (double_buffer = false, fig_dma_overlap's baseline)
// waits immediately after every submission, exposing the full transfer time.

#include "kernels/matmul.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "isa/csr.hpp"
#include "kernels/runtime.hpp"
#include "mem/dma.hpp"
#include "mem/memsys.hpp"

namespace mempool::kernels {

using isa::Assembler;
using isa::Reg;

namespace {

/// Derived geometry shared by the emitter and the host-side lambdas.
struct TiledLayout {
  uint32_t l2_a, l2_b, l2_c;
  uint32_t buf_a0, buf_b0, buf_c0;
  uint32_t sz_a, sz_b, sz_c;  // one panel/block buffer, bytes
  uint32_t nbi, nbj, nb;
  uint32_t q;  // 2x4 sub-blocks per core per block
};

TiledLayout plan(const ClusterConfig& cfg, const TiledMatmulParams& p) {
  TiledLayout t;
  t.l2_a = kL2Base;
  t.l2_b = t.l2_a + p.m * p.k * 4;
  t.l2_c = t.l2_b + p.n * p.k * 4;
  t.sz_a = p.rb * p.k * 4;
  t.sz_b = p.cb * p.k * 4;
  t.sz_c = p.rb * p.cb * 4;
  const uint32_t nbuf = p.double_buffer ? 2 : 1;
  const RuntimeLayout rl = make_runtime_layout(cfg);
  t.buf_a0 = rl.data_base;
  t.buf_b0 = t.buf_a0 + nbuf * t.sz_a;
  t.buf_c0 = t.buf_b0 + nbuf * t.sz_b;
  t.nbi = p.m / p.rb;
  t.nbj = p.n / p.cb;
  t.nb = t.nbi * t.nbj;
  t.q = p.rb * p.cb / (8 * cfg.num_cores());
  MEMPOOL_CHECK_MSG(t.buf_c0 + nbuf * t.sz_c <= cfg.spm_bytes(),
                    "tiled-matmul SPM buffers (" << t.buf_c0 + nbuf * t.sz_c
                                                 << " B) do not fit the L1 ("
                                                 << cfg.spm_bytes() << " B)");
  const uint64_t l2_bytes =
      cfg.memory.param_uint("l2_bytes", L2Params{}.bytes);
  MEMPOOL_CHECK_MSG(
      uint64_t{t.l2_c - kL2Base} + uint64_t{p.m} * p.n * 4 <= l2_bytes,
      "tiled-matmul matrices do not fit the L2 (" << l2_bytes << " B)");
  return t;
}

/// Core 0: launch in(block): the A and Bt panels of block t0 into the SPM
/// buffers. @p blk (t0) holds the block index; clobbers t1-t6.
void emit_submit_in(Assembler& a, const TiledMatmulParams& p,
                    const TiledLayout& t) {
  emit_dma_shape_1d(a, Reg::t6);
  a.srli(Reg::t1, Reg::t0, log2_exact(t.nbj));              // bi
  a.andi(Reg::t2, Reg::t0, static_cast<int32_t>(t.nbj - 1));  // bj
  // A panel: l2_a + bi*sz_a  ->  buf_a0 + sel*sz_a.
  a.slli(Reg::t3, Reg::t1, log2_exact(t.sz_a));
  a.li(Reg::t4, static_cast<int32_t>(t.l2_a));
  a.add(Reg::t3, Reg::t3, Reg::t4);
  if (p.double_buffer) {
    a.andi(Reg::t5, Reg::t0, 1);
    a.slli(Reg::t5, Reg::t5, log2_exact(t.sz_a));
  } else {
    a.li(Reg::t5, 0);
  }
  a.li(Reg::t4, static_cast<int32_t>(t.buf_a0));
  a.add(Reg::t4, Reg::t4, Reg::t5);
  a.li(Reg::t6, static_cast<int32_t>(p.rb * p.k));
  emit_dma_copy_in(a, Reg::t3, Reg::t4, Reg::t6);
  // Bt panel: l2_b + bj*sz_b  ->  buf_b0 + sel*sz_b.
  a.slli(Reg::t3, Reg::t2, log2_exact(t.sz_b));
  a.li(Reg::t4, static_cast<int32_t>(t.l2_b));
  a.add(Reg::t3, Reg::t3, Reg::t4);
  if (p.double_buffer) {
    a.andi(Reg::t5, Reg::t0, 1);
    a.slli(Reg::t5, Reg::t5, log2_exact(t.sz_b));
  } else {
    a.li(Reg::t5, 0);
  }
  a.li(Reg::t4, static_cast<int32_t>(t.buf_b0));
  a.add(Reg::t4, Reg::t4, Reg::t5);
  a.li(Reg::t6, static_cast<int32_t>(p.cb * p.k));
  emit_dma_copy_in(a, Reg::t3, Reg::t4, Reg::t6);
}

/// Core 0: launch out(block): the finished rb×cb SPM block into C, 2-D
/// strided over C's n-word rows. @p t0 holds the block index; clobbers t1-t6.
void emit_submit_out(Assembler& a, const TiledMatmulParams& p,
                     const TiledLayout& t) {
  a.srli(Reg::t1, Reg::t0, log2_exact(t.nbj));              // bi
  a.andi(Reg::t2, Reg::t0, static_cast<int32_t>(t.nbj - 1));  // bj
  a.li(Reg::t5, static_cast<int32_t>(p.rb));
  a.li(Reg::t6, static_cast<int32_t>(p.n * 4));
  emit_dma_shape(a, Reg::t5, Reg::zero, Reg::t6);  // src dense, dst C rows
  // src = buf_c0 + sel*sz_c.
  if (p.double_buffer) {
    a.andi(Reg::t5, Reg::t0, 1);
    a.slli(Reg::t5, Reg::t5, log2_exact(t.sz_c));
  } else {
    a.li(Reg::t5, 0);
  }
  a.li(Reg::t4, static_cast<int32_t>(t.buf_c0));
  a.add(Reg::t4, Reg::t4, Reg::t5);
  // dst = l2_c + bi*(rb*n*4) + bj*(cb*4).
  a.slli(Reg::t3, Reg::t1, log2_exact(p.rb) + log2_exact(p.n) + 2);
  a.slli(Reg::t6, Reg::t2, log2_exact(p.cb) + 2);
  a.add(Reg::t3, Reg::t3, Reg::t6);
  a.li(Reg::t6, static_cast<int32_t>(t.l2_c));
  a.add(Reg::t3, Reg::t3, Reg::t6);
  a.li(Reg::t6, static_cast<int32_t>(p.cb));
  emit_dma_copy_out(a, Reg::t4, Reg::t3, Reg::t6);
}

/// The per-block compute: every core walks its q 2x4 sub-blocks of the
/// current rb×cb output block. Expects s7/s8/s9 = current A/Bt/C buffer
/// bases; preserves a0/s0/s1/s7/s8/s9.
void emit_compute_block(Assembler& a, const TiledMatmulParams& p,
                        const TiledLayout& t) {
  const int32_t row = static_cast<int32_t>(p.k * 4);
  const int32_t crow = static_cast<int32_t>(p.cb * 4);
  const unsigned log2k = log2_exact(p.k);
  const unsigned log2cb4 = log2_exact(p.cb / 4);

  a.li(Reg::t1, static_cast<int32_t>(t.q));
  a.mul(Reg::a7, Reg::a0, Reg::t1);  // first sub-block index
  a.li(Reg::s6, static_cast<int32_t>(t.q));

  a.l("sub_loop");
  a.srli(Reg::t4, Reg::a7, log2cb4);                            // r_idx
  a.andi(Reg::t5, Reg::a7, static_cast<int32_t>(p.cb / 4 - 1));  // c_idx
  a.slli(Reg::t1, Reg::t4, log2k + 3);
  a.add(Reg::t1, Reg::t1, Reg::s7);  // &A[2*r_idx][0]
  a.slli(Reg::t3, Reg::t5, log2k + 4);
  a.add(Reg::t3, Reg::t3, Reg::s8);  // &Bt[4*c_idx][0]
  a.slli(Reg::t4, Reg::t4, log2_exact(p.cb) + 3);
  a.slli(Reg::t5, Reg::t5, 4);
  a.add(Reg::t4, Reg::t4, Reg::t5);
  a.add(Reg::tp, Reg::t4, Reg::s9);  // &C[2*r_idx][4*c_idx]
  a.li(Reg::s2, 0);
  a.li(Reg::s3, 0);
  a.li(Reg::s4, 0);
  a.li(Reg::s5, 0);
  a.li(Reg::a1, 0);
  a.li(Reg::a6, 0);
  a.li(Reg::s10, 0);
  a.li(Reg::s11, 0);
  a.li(Reg::gp, static_cast<int32_t>(p.k));

  // The 2x4 inner step of the flat kernel (mul/add spaced at the multiplier
  // latency), walking k sequentially through the SPM panels.
  a.l("inner");
  a.lw(Reg::t0, Reg::t1, 0);        // A[r][j]
  a.lw(Reg::t2, Reg::t1, row);      // A[r+1][j]
  a.lw(Reg::a2, Reg::t3, 0);        // Bt[c..c+3][j]
  a.lw(Reg::a3, Reg::t3, row);
  a.lw(Reg::a4, Reg::t3, 2 * row);
  a.lw(Reg::a5, Reg::t3, 3 * row);
  a.addi(Reg::t1, Reg::t1, 4);
  a.addi(Reg::t3, Reg::t3, 4);
  a.mul(Reg::t4, Reg::t0, Reg::a2);
  a.mul(Reg::t5, Reg::t0, Reg::a3);
  a.mul(Reg::t6, Reg::t0, Reg::a4);
  a.add(Reg::s2, Reg::s2, Reg::t4);
  a.mul(Reg::t4, Reg::t0, Reg::a5);
  a.add(Reg::s3, Reg::s3, Reg::t5);
  a.mul(Reg::t5, Reg::t2, Reg::a2);
  a.add(Reg::s4, Reg::s4, Reg::t6);
  a.mul(Reg::t6, Reg::t2, Reg::a3);
  a.add(Reg::s5, Reg::s5, Reg::t4);
  a.mul(Reg::t4, Reg::t2, Reg::a4);
  a.add(Reg::a1, Reg::a1, Reg::t5);
  a.mul(Reg::t5, Reg::t2, Reg::a5);
  a.add(Reg::a6, Reg::a6, Reg::t6);
  a.add(Reg::s10, Reg::s10, Reg::t4);
  a.add(Reg::s11, Reg::s11, Reg::t5);
  a.addi(Reg::gp, Reg::gp, -1);
  a.bnez(Reg::gp, "inner");

  a.sw(Reg::s2, Reg::tp, 0);
  a.sw(Reg::s3, Reg::tp, 4);
  a.sw(Reg::s4, Reg::tp, 8);
  a.sw(Reg::s5, Reg::tp, 12);
  a.sw(Reg::a1, Reg::tp, crow);
  a.sw(Reg::a6, Reg::tp, crow + 4);
  a.sw(Reg::s10, Reg::tp, crow + 8);
  a.sw(Reg::s11, Reg::tp, crow + 12);
  a.addi(Reg::a7, Reg::a7, 1);
  a.addi(Reg::s6, Reg::s6, -1);
  a.bnez(Reg::s6, "sub_loop");
}

}  // namespace

KernelProgram build_matmul_tiled(const ClusterConfig& cfg,
                                 const TiledMatmulParams& p, uint64_t seed) {
  MEMPOOL_CHECK_MSG(MemoryRegistry::get(cfg.memory.name).provides_dma(),
                    "tiled matmul needs a DMA-capable memory system (memory "
                    "'" << cfg.memory.name << "' has none; use tcdm+l2)");
  MEMPOOL_CHECK(is_pow2(p.m) && is_pow2(p.n) && is_pow2(p.k) &&
                is_pow2(p.rb) && is_pow2(p.cb));
  MEMPOOL_CHECK_MSG(p.k >= 4 && p.k <= 128,
                    "k must be in [4, 128] (immediate-offset panel rows)");
  MEMPOOL_CHECK(p.rb >= 2 && p.cb >= 4 && p.m >= p.rb && p.n >= p.cb);
  MEMPOOL_CHECK_MSG(
      (p.rb * p.cb) % (8 * cfg.num_cores()) == 0,
      "rb*cb must be divisible by 8*num_cores (2x4 register blocking)");
  const TiledLayout t = plan(cfg, p);

  Assembler a;
  emit_crt0(a, cfg, /*stack_bytes=*/256);
  emit_barrier(a, cfg, make_runtime_layout(cfg));

  a.l("main");
  a.addi(Reg::sp, Reg::sp, -16);
  a.sw(Reg::ra, Reg::sp, 0);
  a.li(Reg::s0, 0);                               // b
  a.li(Reg::s1, static_cast<int32_t>(t.nb));      // NB

  if (p.double_buffer) {
    a.bnez(Reg::a0, "blk_loop");
    a.li(Reg::t0, 0);
    emit_submit_in(a, p, t);  // prefetch in(0)
  }

  a.l("blk_loop");
  if (p.double_buffer) {
    // wait; barrier; then overlap in(b+1) / out(b-1) with compute(b).
    a.bnez(Reg::a0, "sync_top");
    emit_dma_wait(a, Reg::t6);
    a.l("sync_top");
    a.call("barrier");
    a.bnez(Reg::a0, "compute");
    a.addi(Reg::t0, Reg::s0, 1);
    a.beq(Reg::t0, Reg::s1, "no_in");
    emit_submit_in(a, p, t);
    a.l("no_in");
    a.beqz(Reg::s0, "no_out");
    a.addi(Reg::t0, Reg::s0, -1);
    emit_submit_out(a, p, t);
    a.l("no_out");
    a.l("compute");
  } else {
    // Serialized baseline: expose the full transfer time of in(b).
    a.bnez(Reg::a0, "sync_top");
    a.mv(Reg::t0, Reg::s0);
    emit_submit_in(a, p, t);
    emit_dma_wait(a, Reg::t6);
    a.l("sync_top");
    a.call("barrier");
  }

  // Current buffer bases: sel = b&1 under double buffering, 0 otherwise.
  if (p.double_buffer) {
    a.andi(Reg::t0, Reg::s0, 1);
  } else {
    a.li(Reg::t0, 0);
  }
  a.slli(Reg::t1, Reg::t0, log2_exact(t.sz_a));
  a.li(Reg::t2, static_cast<int32_t>(t.buf_a0));
  a.add(Reg::s7, Reg::t1, Reg::t2);
  a.slli(Reg::t1, Reg::t0, log2_exact(t.sz_b));
  a.li(Reg::t2, static_cast<int32_t>(t.buf_b0));
  a.add(Reg::s8, Reg::t1, Reg::t2);
  a.slli(Reg::t1, Reg::t0, log2_exact(t.sz_c));
  a.li(Reg::t2, static_cast<int32_t>(t.buf_c0));
  a.add(Reg::s9, Reg::t1, Reg::t2);

  emit_compute_block(a, p, t);
  a.call("barrier");

  if (!p.double_buffer) {
    a.bnez(Reg::a0, "sync_out");
    a.mv(Reg::t0, Reg::s0);
    emit_submit_out(a, p, t);
    emit_dma_wait(a, Reg::t6);
    a.l("sync_out");
    a.call("barrier");
  }

  a.addi(Reg::s0, Reg::s0, 1);
  a.bne(Reg::s0, Reg::s1, "blk_loop");

  if (p.double_buffer) {
    a.bnez(Reg::a0, "sync_end");
    a.addi(Reg::t0, Reg::s0, -1);  // NB-1
    emit_submit_out(a, p, t);
    emit_dma_wait(a, Reg::t6);     // also drains out(NB-2)
    a.l("sync_end");
    a.call("barrier");
  }

  // a0 was preserved throughout (the compute avoids it); restore anyway for
  // hygiene before returning to crt0.
  a.csrr(Reg::a0, isa::kCsrMhartid);
  a.lw(Reg::ra, Reg::sp, 0);
  a.addi(Reg::sp, Reg::sp, 16);
  a.ret();

  KernelProgram kp;
  kp.name = "matmul_tiled";
  kp.image = a.finish();

  kp.init = [t, p, seed](System& sys) {
    Rng rng(seed);
    for (uint32_t i = 0; i < p.m * p.k; ++i) {
      sys.write_word(t.l2_a + 4 * i,
                     static_cast<uint32_t>(rng.next_below(256)) - 128);
    }
    for (uint32_t i = 0; i < p.n * p.k; ++i) {
      sys.write_word(t.l2_b + 4 * i,
                     static_cast<uint32_t>(rng.next_below(256)) - 128);
    }
  };

  kp.check = [t, p](const System& sys, std::string* err) {
    const std::vector<uint32_t> ma = sys.read_words(t.l2_a, p.m * p.k);
    const std::vector<uint32_t> mb = sys.read_words(t.l2_b, p.n * p.k);
    for (uint32_t i = 0; i < p.m; ++i) {
      for (uint32_t j = 0; j < p.n; ++j) {
        uint32_t want = 0;
        for (uint32_t kk = 0; kk < p.k; ++kk) {
          want += ma[i * p.k + kk] * mb[j * p.k + kk];
        }
        const uint32_t got = sys.read_word(t.l2_c + 4 * (i * p.n + j));
        if (got != want) {
          std::ostringstream os;
          os << "tiled matmul mismatch at C[" << i << "][" << j << "]: got 0x"
             << std::hex << got << ", want 0x" << want;
          *err = os.str();
          return false;
        }
      }
    }
    return true;
  };
  return kp;
}

}  // namespace mempool::kernels
