#include "kernels/kernel.hpp"

#include "common/check.hpp"

namespace mempool::kernels {

uint64_t run_kernel(System& sys, const KernelProgram& kp, uint64_t max_cycles,
                    bool verify) {
  sys.load_program(kp.image);
  if (kp.init) kp.init(sys);
  const System::RunResult r = sys.run(max_cycles);
  MEMPOOL_CHECK_MSG(r.all_halted, kp.name << " did not finish within "
                                          << max_cycles << " cycles on "
                                          << sys.config().display_name());
  if (verify && kp.check) {
    std::string err;
    MEMPOOL_CHECK_MSG(kp.check(sys, &err), kp.name << ": " << err);
  }
  return r.cycles;
}

}  // namespace mempool::kernels
