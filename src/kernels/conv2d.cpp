#include "kernels/conv2d.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "kernels/golden.hpp"
#include "kernels/runtime.hpp"

namespace mempool::kernels {

using isa::Assembler;
using isa::Reg;

namespace {
// Separable 3×3 binomial kernel; small constants keep the li sequences short.
constexpr int32_t kWeights[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
}  // namespace

KernelProgram build_conv2d(const ClusterConfig& cfg, uint32_t width,
                           uint64_t seed) {
  const uint32_t h = cfg.num_tiles;
  const uint32_t cpt = cfg.cores_per_tile;
  const uint32_t stack_bytes = 256;
  MEMPOOL_CHECK(width % cpt == 0);
  MEMPOOL_CHECK_MSG(2 * width * 4 + cpt * stack_bytes <= cfg.seq_region_bytes,
                    "row pair + stacks exceed the sequential region");
  const uint32_t chunk = width / cpt;
  const unsigned log2seq = log2_exact(cfg.seq_region_bytes);
  const RuntimeLayout layout = make_runtime_layout(cfg);
  const uint32_t out_off = width * 4;  // output row follows the input row

  Assembler a;
  emit_crt0(a, cfg, stack_bytes);
  emit_barrier(a, cfg, layout);

  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  // Boundary rows are skipped: tiles 0 and h-1 only participate in the
  // barrier.
  a.li(Reg::t0, static_cast<int32_t>(h - 1));
  a.beqz(Reg::gp, "conv_skip");
  a.beq(Reg::gp, Reg::t0, "conv_skip");

  a.slli(Reg::s0, Reg::gp, log2seq);            // in row r (own tile)
  a.li(Reg::t1, static_cast<int32_t>(cfg.seq_region_bytes));
  a.sub(Reg::s1, Reg::s0, Reg::t1);             // in row r-1 (tile above)
  a.add(Reg::s2, Reg::s0, Reg::t1);             // in row r+1 (tile below)
  a.li(Reg::t2, static_cast<int32_t>(out_off));
  a.add(Reg::s3, Reg::s0, Reg::t2);             // out row r

  a.andi(Reg::t3, Reg::a0, static_cast<int32_t>(cpt - 1));
  a.li(Reg::t4, static_cast<int32_t>(chunk));
  a.mul(Reg::s4, Reg::t3, Reg::t4);             // c_start
  a.add(Reg::s5, Reg::s4, Reg::t4);             // c_end
  a.bnez(Reg::s4, "conv_no_clamp_lo");
  a.li(Reg::s4, 1);                             // skip column 0
  a.l("conv_no_clamp_lo");
  a.li(Reg::t5, static_cast<int32_t>(width));
  a.bne(Reg::s5, Reg::t5, "conv_no_clamp_hi");
  a.addi(Reg::s5, Reg::s5, -1);                 // skip column width-1
  a.l("conv_no_clamp_hi");
  a.bge(Reg::s4, Reg::s5, "conv_skip");

  // Weights: w00..w22 in s6..s10, a1..a4.
  a.li(Reg::s6, kWeights[0]);
  a.li(Reg::s7, kWeights[1]);
  a.li(Reg::s8, kWeights[2]);
  a.li(Reg::s9, kWeights[3]);
  a.li(Reg::s10, kWeights[4]);
  a.li(Reg::a1, kWeights[5]);
  a.li(Reg::a2, kWeights[6]);
  a.li(Reg::a3, kWeights[7]);
  a.li(Reg::a4, kWeights[8]);

  // Column pointers at the window centre.
  a.slli(Reg::t6, Reg::s4, 2);
  a.add(Reg::t1, Reg::s1, Reg::t6);
  a.add(Reg::t2, Reg::s0, Reg::t6);
  a.add(Reg::t3, Reg::s2, Reg::t6);
  a.add(Reg::t4, Reg::s3, Reg::t6);

  a.l("conv_col");
  a.lw(Reg::a5, Reg::t1, -4);
  a.lw(Reg::a6, Reg::t1, 0);
  a.lw(Reg::a7, Reg::t1, 4);
  a.mul(Reg::t5, Reg::a5, Reg::s6);
  a.mul(Reg::t6, Reg::a6, Reg::s7);
  a.add(Reg::t0, Reg::t5, Reg::t6);
  a.mul(Reg::t5, Reg::a7, Reg::s8);
  a.add(Reg::t0, Reg::t0, Reg::t5);
  a.lw(Reg::a5, Reg::t2, -4);
  a.lw(Reg::a6, Reg::t2, 0);
  a.lw(Reg::a7, Reg::t2, 4);
  a.mul(Reg::t5, Reg::a5, Reg::s9);
  a.add(Reg::t0, Reg::t0, Reg::t5);
  a.mul(Reg::t6, Reg::a6, Reg::s10);
  a.add(Reg::t0, Reg::t0, Reg::t6);
  a.mul(Reg::t5, Reg::a7, Reg::a1);
  a.add(Reg::t0, Reg::t0, Reg::t5);
  a.lw(Reg::a5, Reg::t3, -4);
  a.lw(Reg::a6, Reg::t3, 0);
  a.lw(Reg::a7, Reg::t3, 4);
  a.mul(Reg::t5, Reg::a5, Reg::a2);
  a.add(Reg::t0, Reg::t0, Reg::t5);
  a.mul(Reg::t6, Reg::a6, Reg::a3);
  a.add(Reg::t0, Reg::t0, Reg::t6);
  a.mul(Reg::t5, Reg::a7, Reg::a4);
  a.add(Reg::t0, Reg::t0, Reg::t5);
  a.sw(Reg::t0, Reg::t4, 0);
  a.addi(Reg::t1, Reg::t1, 4);
  a.addi(Reg::t2, Reg::t2, 4);
  a.addi(Reg::t3, Reg::t3, 4);
  a.addi(Reg::t4, Reg::t4, 4);
  a.addi(Reg::s4, Reg::s4, 1);
  a.bne(Reg::s4, Reg::s5, "conv_col");

  a.l("conv_skip");
  a.call("barrier");
  a.mv(Reg::ra, Reg::s11);
  a.ret();

  KernelProgram kp;
  kp.name = "2dconv";
  kp.image = a.finish();

  const uint32_t seq_bytes = cfg.seq_region_bytes;
  kp.init = [h, width, seq_bytes, seed](System& sys) {
    Rng rng(seed);
    for (uint32_t r = 0; r < h; ++r) {
      const uint32_t base = r * seq_bytes;
      for (uint32_t c = 0; c < width; ++c) {
        sys.write_word(base + 4 * c,
                       static_cast<uint32_t>(rng.next_below(256)));
        sys.write_word(base + width * 4 + 4 * c, 0);
      }
    }
  };

  kp.check = [h, width, seq_bytes, out_off](const System& sys,
                                            std::string* err) {
    std::vector<uint32_t> img(h * width);
    for (uint32_t r = 0; r < h; ++r) {
      for (uint32_t c = 0; c < width; ++c) {
        img[r * width + c] = sys.read_word(r * seq_bytes + 4 * c);
      }
    }
    const std::vector<uint32_t> want = golden_conv2d(img, h, width, kWeights);
    for (uint32_t r = 1; r + 1 < h; ++r) {
      for (uint32_t c = 1; c + 1 < width; ++c) {
        const uint32_t got = sys.read_word(r * seq_bytes + out_off + 4 * c);
        if (got != want[r * width + c]) {
          std::ostringstream os;
          os << "2dconv mismatch at (" << r << "," << c << "): got " << got
             << ", want " << want[r * width + c];
          *err = os.str();
          return false;
        }
      }
    }
    return true;
  };
  return kp;
}

}  // namespace mempool::kernels
