#pragma once
// Load-sweep experiment harness reproducing the methodology of Sections V-A
// and V-B: warm up, measure accepted throughput over a fixed window, keep
// collecting latency samples through a drain phase.

#include <cstdint>
#include <vector>

#include "core/cluster_config.hpp"
#include "sim/shard.hpp"

namespace mempool {

struct TrafficExperimentConfig {
  ClusterConfig cluster;
  double lambda = 0.1;        ///< Offered load (requests/core/cycle).
  double p_local_seq = 0.0;   ///< Fig. 6 locality parameter.
  uint64_t warmup_cycles = 1000;
  uint64_t measure_cycles = 4000;
  uint64_t drain_cycles = 2000;
  uint64_t seed = 1;
  /// Which scheduler steps the point (the benches' --engine flag): active
  /// (default), dense (the evaluate-everything oracle), or sharded (the
  /// activity-driven scheduler parallelized over the fabric's groups).
  /// Results are bit-identical across all three; only wall-clock differs.
  EngineMode engine = EngineMode::kActive;
  /// Sharded engine only: threads stepping one point's cluster (leader +
  /// sim_threads-1 pool helpers), capped by the topology's shard count.
  /// Orthogonal to the sweep runner's --threads, which parallelizes across
  /// points.
  unsigned sim_threads = 1;
  /// Progress watchdog (Engine::set_stall_horizon): a buffer that stays
  /// non-empty for this many cycles without a single pop aborts the point
  /// with a LivenessError carrying a mempool.liveness.v1 report instead of
  /// hanging. 0 (default) disarms. Deterministic: identical across engine
  /// modes and thread counts.
  uint64_t stall_horizon = 0;
};

struct TrafficPoint {
  double offered = 0;       ///< λ actually requested.
  double generated = 0;     ///< Measured generation rate (sanity ≈ offered).
  double accepted = 0;      ///< Responses/core/cycle in the measure window.
  double avg_latency = 0;   ///< Mean round-trip latency (cycles).
  double p95_latency = 0;
  double max_latency = 0;
  uint64_t completed = 0;   ///< Latency samples collected.

  /// Exact (bit-wise for the doubles) comparison — the parallel runner's
  /// determinism contract is checked with this.
  bool operator==(const TrafficPoint&) const = default;
};

/// Detailed per-run counters for the equivalence harness: everything the
/// monitor and fabric count, compared bit-for-bit between engine modes.
struct TrafficCounters {
  uint64_t generated = 0;
  uint64_t injected = 0;
  uint64_t completed = 0;
  uint64_t completed_in_window = 0;
  uint64_t tile_req_traversals = 0;
  uint64_t tile_resp_traversals = 0;
  uint64_t dir_traversals = 0;
  uint64_t remote_resp_traversals = 0;
  uint64_t group_local_traversals = 0;
  uint64_t butterfly_traversals = 0;
  uint64_t bank_accesses = 0;
  uint64_t bank_stall_cycles = 0;
  uint64_t final_cycle = 0;  ///< Engine cycle after the run (incl. skipped).

  bool operator==(const TrafficCounters&) const = default;
};

/// Run one (topology, λ, p_local) point.
///
/// Thread-safe and re-entrant: every invocation owns its Engine, Cluster,
/// monitor, and traffic generators, and each generator derives its RNG
/// stream purely from (cfg.seed, core id). Arbitration in the fabric is
/// round-robin, never randomized. Concurrent calls therefore share no
/// mutable state and the result is a pure function of @p cfg — the parallel
/// runner (src/runner/) relies on this to shard points across threads with
/// bit-identical results for any thread count.
///
/// @p counters_out, when non-null, receives the full monitor + fabric
/// counter set (the cycle-equivalence tests assert these match between the
/// activity-driven and dense engines).
TrafficPoint run_traffic_point(const TrafficExperimentConfig& cfg,
                               TrafficCounters* counters_out = nullptr);

/// Sweep λ over @p loads with otherwise fixed parameters, one point after
/// another on the calling thread. This is the serial reference path; use
/// runner::run_sweep to shard a grid across cores.
std::vector<TrafficPoint> sweep_load(const TrafficExperimentConfig& base,
                                     const std::vector<double>& loads);

}  // namespace mempool
