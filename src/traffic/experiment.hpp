#pragma once
// Load-sweep experiment harness reproducing the methodology of Sections V-A
// and V-B: warm up, measure accepted throughput over a fixed window, keep
// collecting latency samples through a drain phase.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster_config.hpp"
#include "sim/shard.hpp"

namespace mempool {

struct TrafficExperimentConfig {
  ClusterConfig cluster;
  double lambda = 0.1;        ///< Offered load (requests/core/cycle).
  double p_local_seq = 0.0;   ///< Fig. 6 locality parameter.
  uint64_t warmup_cycles = 1000;
  uint64_t measure_cycles = 4000;
  uint64_t drain_cycles = 2000;
  uint64_t seed = 1;
  /// Which scheduler steps the point (the benches' --engine flag): active
  /// (default), dense (the evaluate-everything oracle), or sharded (the
  /// activity-driven scheduler parallelized over the fabric's groups).
  /// Results are bit-identical across all three; only wall-clock differs.
  EngineMode engine = EngineMode::kActive;
  /// Sharded engine only: threads stepping one point's cluster (leader +
  /// sim_threads-1 pool helpers), capped by the topology's shard count.
  /// Orthogonal to the sweep runner's --threads, which parallelizes across
  /// points.
  unsigned sim_threads = 1;
  /// Progress watchdog (Engine::set_stall_horizon): a buffer that stays
  /// non-empty for this many cycles without a single pop aborts the point
  /// with a LivenessError carrying a mempool.liveness.v1 report instead of
  /// hanging. 0 (default) disarms. Deterministic: identical across engine
  /// modes and thread counts.
  uint64_t stall_horizon = 0;
};

struct TrafficPoint {
  double offered = 0;       ///< λ actually requested.
  double generated = 0;     ///< Measured generation rate (sanity ≈ offered).
  double accepted = 0;      ///< Responses/core/cycle in the measure window.
  double avg_latency = 0;   ///< Mean round-trip latency (cycles).
  double p95_latency = 0;
  double max_latency = 0;
  uint64_t completed = 0;   ///< Latency samples collected.

  /// Exact (bit-wise for the doubles) comparison — the parallel runner's
  /// determinism contract is checked with this.
  bool operator==(const TrafficPoint&) const = default;
};

/// Detailed per-run counters for the equivalence harness: everything the
/// monitor and fabric count, compared bit-for-bit between engine modes.
struct TrafficCounters {
  uint64_t generated = 0;
  uint64_t injected = 0;
  uint64_t completed = 0;
  uint64_t completed_in_window = 0;
  uint64_t tile_req_traversals = 0;
  uint64_t tile_resp_traversals = 0;
  uint64_t dir_traversals = 0;
  uint64_t remote_resp_traversals = 0;
  uint64_t group_local_traversals = 0;
  uint64_t butterfly_traversals = 0;
  uint64_t bank_accesses = 0;
  uint64_t bank_stall_cycles = 0;
  uint64_t final_cycle = 0;  ///< Engine cycle after the run (incl. skipped).

  bool operator==(const TrafficCounters&) const = default;
};

/// Thrown by run_traffic_point when CheckpointOptions::should_abort asks the
/// point to stop between chunks (e.g. a service deadline expired mid-run).
/// The point produced no result; any checkpoints already handed to
/// on_checkpoint remain valid resume images.
class PointAborted : public std::runtime_error {
 public:
  explicit PointAborted(uint64_t cycle)
      : std::runtime_error("traffic point aborted at cycle " +
                           std::to_string(cycle)),
        cycle_(cycle) {}
  uint64_t cycle() const { return cycle_; }

 private:
  uint64_t cycle_;
};

/// Crash-safety hooks for run_traffic_point: periodic engine snapshots, a
/// resume image, and a cooperative abort poll. All fields default to "off",
/// so CheckpointOptions{} reproduces the plain uninterrupted run.
struct CheckpointOptions {
  /// Snapshot period in cycles; 0 disables periodic checkpointing. The run
  /// is stepped in chunks of this size and a mempool.ckpt.v1 image is taken
  /// at each chunk boundary (a quiesced point between two cycles).
  uint64_t checkpoint_every = 0;
  /// Identity stamped into every snapshot (e.g. the SimRequest content
  /// hash). Restore refuses an image whose key differs, so a checkpoint can
  /// never resume a different point's run.
  std::string key;
  /// Serialized mempool.ckpt.v1 image to resume from; nullptr = cold start.
  /// The image must come from a run with the identical config (same
  /// component list, monitor count, and key).
  const std::string* restore_from = nullptr;
  /// Receives each periodic snapshot, already serialized. The image is
  /// complete and self-validating (CRC-sealed); persist it with
  /// write-then-rename for crash atomicity.
  std::function<void(uint64_t cycle, const std::string& image)> on_checkpoint;
  /// Polled at every chunk boundary; return true to abort the point with
  /// PointAborted instead of running to completion.
  std::function<bool()> should_abort;
};

/// Run one (topology, λ, p_local) point.
///
/// Thread-safe and re-entrant: every invocation owns its Engine, Cluster,
/// monitor, and traffic generators, and each generator derives its RNG
/// stream purely from (cfg.seed, core id). Arbitration in the fabric is
/// round-robin, never randomized. Concurrent calls therefore share no
/// mutable state and the result is a pure function of @p cfg — the parallel
/// runner (src/runner/) relies on this to shard points across threads with
/// bit-identical results for any thread count.
///
/// @p counters_out, when non-null, receives the full monitor + fabric
/// counter set (the cycle-equivalence tests assert these match between the
/// activity-driven and dense engines).
TrafficPoint run_traffic_point(const TrafficExperimentConfig& cfg,
                               TrafficCounters* counters_out = nullptr);

/// Checkpoint-aware variant: identical result to the plain overload (bit
/// for bit, including under restore — the monitors' double-accumulation
/// order is preserved by snapshotting them alongside the engine), but the
/// run can be snapshotted, resumed, and aborted via @p ckpt.
TrafficPoint run_traffic_point(const TrafficExperimentConfig& cfg,
                               const CheckpointOptions& ckpt,
                               TrafficCounters* counters_out = nullptr);

/// Sweep λ over @p loads with otherwise fixed parameters, one point after
/// another on the calling thread. This is the serial reference path; use
/// runner::run_sweep to shard a grid across cores.
std::vector<TrafficPoint> sweep_load(const TrafficExperimentConfig& base,
                                     const std::vector<double>& loads);

}  // namespace mempool
