#include "traffic/experiment.hpp"

#include <deque>
#include <memory>

#include "core/cluster.hpp"
#include "mem/imem.hpp"
#include "noc/monitor.hpp"
#include "runner/shard_gang.hpp"
#include "sim/engine.hpp"
#include "traffic/generator.hpp"

namespace mempool {

TrafficPoint run_traffic_point(const TrafficExperimentConfig& ecfg,
                               TrafficCounters* counters_out) {
  const ClusterConfig& ccfg = ecfg.cluster;
  ccfg.validate();

  InstrMem imem(4096);  // unused by generators, required by the tile I$.
  Engine engine;
  engine.set_dense(ecfg.engine == EngineMode::kDense);
  Cluster cluster(ccfg, &imem);

  // Sharded mode: every shard records into its own monitor (a shared one
  // would be written concurrently); the per-shard monitors merge exactly
  // after the run (see noc/monitor.hpp), so the reported point is
  // bit-identical to the sequential engines'. The gang's helper threads live
  // on a point-private pool — sweep-level parallelism (runner --threads) and
  // engine-level parallelism (--sim-threads) stay independent.
  const bool sharded = ecfg.engine == EngineMode::kSharded;
  const uint32_t num_monitors = sharded ? cluster.num_shards() : 1;
  std::deque<LatencyMonitor> monitors;
  for (uint32_t s = 0; s < num_monitors; ++s) {
    monitors.emplace_back(ecfg.warmup_cycles);
    monitors.back().set_measure_end(ecfg.warmup_cycles + ecfg.measure_cycles);
  }

  std::unique_ptr<runner::ShardCrew> crew;
  if (sharded) {
    crew = std::make_unique<runner::ShardCrew>(ecfg.sim_threads,
                                               cluster.num_shards());
    engine.set_sharded(cluster.num_shards(), crew->executor());
  }

  TrafficConfig tcfg;
  tcfg.lambda = ecfg.lambda;
  tcfg.p_local_seq = ecfg.p_local_seq;
  tcfg.seed = ecfg.seed;
  tcfg.stop_generation_at = ecfg.warmup_cycles + ecfg.measure_cycles;

  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<Client*> clients;
  gens.reserve(ccfg.num_cores());
  for (uint32_t c = 0; c < ccfg.num_cores(); ++c) {
    const auto tile = static_cast<uint16_t>(c / ccfg.cores_per_tile);
    LatencyMonitor* monitor =
        sharded ? &monitors[cluster.tile_shard(tile)] : &monitors.front();
    gens.push_back(std::make_unique<TrafficGenerator>(
        "gen" + std::to_string(c), static_cast<uint16_t>(c), tile, ccfg,
        &cluster.layout(), &engine, tcfg, monitor));
    clients.push_back(gens.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  engine.set_stall_horizon(ecfg.stall_horizon);
  engine.run(ecfg.warmup_cycles + ecfg.measure_cycles + ecfg.drain_cycles);

  LatencyMonitor& monitor = monitors.front();
  for (uint32_t s = 1; s < num_monitors; ++s) monitor.absorb(monitors[s]);

  if (counters_out != nullptr) {
    const Cluster::FabricStats fs = cluster.fabric_stats();
    TrafficCounters& c = *counters_out;
    c.generated = monitor.generated();
    c.injected = monitor.injected();
    c.completed = monitor.completed();
    c.completed_in_window = monitor.completed_in_window();
    c.tile_req_traversals = fs.tile_req_traversals;
    c.tile_resp_traversals = fs.tile_resp_traversals;
    c.dir_traversals = fs.dir_traversals;
    c.remote_resp_traversals = fs.remote_resp_traversals;
    c.group_local_traversals = fs.group_local_traversals;
    c.butterfly_traversals = fs.butterfly_traversals;
    c.bank_accesses = fs.bank_accesses;
    c.bank_stall_cycles = fs.bank_stall_cycles;
    c.final_cycle = engine.cycle();
  }

  TrafficPoint p;
  p.offered = ecfg.lambda;
  const double window = static_cast<double>(ecfg.measure_cycles);
  const double cores = static_cast<double>(ccfg.num_cores());
  p.generated = static_cast<double>(monitor.generated()) / (window * cores);
  p.accepted =
      static_cast<double>(monitor.completed_in_window()) / (window * cores);
  p.avg_latency = monitor.avg_latency();
  p.p95_latency = monitor.p95_latency();
  p.max_latency = monitor.max_latency();
  p.completed = monitor.completed();
  return p;
}

std::vector<TrafficPoint> sweep_load(const TrafficExperimentConfig& base,
                                     const std::vector<double>& loads) {
  std::vector<TrafficPoint> out;
  out.reserve(loads.size());
  for (double l : loads) {
    TrafficExperimentConfig cfg = base;
    cfg.lambda = l;
    out.push_back(run_traffic_point(cfg));
  }
  return out;
}

}  // namespace mempool
