#include "traffic/experiment.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/check.hpp"

#include "core/cluster.hpp"
#include "mem/imem.hpp"
#include "noc/monitor.hpp"
#include "runner/shard_gang.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"
#include "traffic/generator.hpp"

namespace mempool {

TrafficPoint run_traffic_point(const TrafficExperimentConfig& ecfg,
                               TrafficCounters* counters_out) {
  return run_traffic_point(ecfg, CheckpointOptions{}, counters_out);
}

TrafficPoint run_traffic_point(const TrafficExperimentConfig& ecfg,
                               const CheckpointOptions& ckpt,
                               TrafficCounters* counters_out) {
  const ClusterConfig& ccfg = ecfg.cluster;
  ccfg.validate();

  InstrMem imem(4096);  // unused by generators, required by the tile I$.
  Engine engine;
  engine.set_dense(ecfg.engine == EngineMode::kDense);
  Cluster cluster(ccfg, &imem);

  // Sharded mode: every shard records into its own monitor (a shared one
  // would be written concurrently); the per-shard monitors merge exactly
  // after the run (see noc/monitor.hpp), so the reported point is
  // bit-identical to the sequential engines'. The gang's helper threads live
  // on a point-private pool — sweep-level parallelism (runner --threads) and
  // engine-level parallelism (--sim-threads) stay independent.
  const bool sharded = ecfg.engine == EngineMode::kSharded;
  const uint32_t num_monitors = sharded ? cluster.num_shards() : 1;
  std::deque<LatencyMonitor> monitors;
  for (uint32_t s = 0; s < num_monitors; ++s) {
    monitors.emplace_back(ecfg.warmup_cycles);
    monitors.back().set_measure_end(ecfg.warmup_cycles + ecfg.measure_cycles);
  }

  std::unique_ptr<runner::ShardCrew> crew;
  if (sharded) {
    crew = std::make_unique<runner::ShardCrew>(ecfg.sim_threads,
                                               cluster.num_shards());
    engine.set_sharded(cluster.num_shards(), crew->executor());
  }

  TrafficConfig tcfg;
  tcfg.lambda = ecfg.lambda;
  tcfg.p_local_seq = ecfg.p_local_seq;
  tcfg.seed = ecfg.seed;
  tcfg.stop_generation_at = ecfg.warmup_cycles + ecfg.measure_cycles;

  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<Client*> clients;
  gens.reserve(ccfg.num_cores());
  for (uint32_t c = 0; c < ccfg.num_cores(); ++c) {
    const auto tile = static_cast<uint16_t>(c / ccfg.cores_per_tile);
    LatencyMonitor* monitor =
        sharded ? &monitors[cluster.tile_shard(tile)] : &monitors.front();
    gens.push_back(std::make_unique<TrafficGenerator>(
        "gen" + std::to_string(c), static_cast<uint16_t>(c), tile, ccfg,
        &cluster.layout(), &engine, tcfg, monitor));
    clients.push_back(gens.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  engine.set_stall_horizon(ecfg.stall_horizon);

  // Resume: the engine and monitors restore from the image before the first
  // step, as if the original run had simply been paused here. Component
  // count, monitor count, and the point key are all validated, so an image
  // from a different config (or a different engine mode's monitor layout)
  // is rejected instead of silently producing a diverged result.
  if (ckpt.restore_from != nullptr) {
    const Snapshot snap = Snapshot::deserialize(*ckpt.restore_from);
    MEMPOOL_CHECK_MSG(ckpt.key.empty() || snap.key == ckpt.key,
                      "checkpoint key mismatch: image is for '"
                          << snap.key << "', this point is '" << ckpt.key
                          << "'");
    engine.load_state(snap);
    for (uint32_t s = 0; s < num_monitors; ++s) {
      StateSource src(snap.payload("monitor" + std::to_string(s)));
      monitors[s].load_state(src);
      src.finish();
    }
    MEMPOOL_CHECK_MSG(
        snap.find("monitor" + std::to_string(num_monitors)) == nullptr,
        "checkpoint monitor count mismatch (saved under a different engine "
        "mode?)");
  }

  const uint64_t total =
      ecfg.warmup_cycles + ecfg.measure_cycles + ecfg.drain_cycles;
  MEMPOOL_CHECK_MSG(engine.cycle() <= total,
                    "checkpoint is past the end of the run ("
                        << engine.cycle() << " > " << total << " cycles)");

  // Stepping the run in checkpoint_every-sized chunks is invisible to the
  // simulation: run() leaves no partial cycle, so every chunk boundary is a
  // quiesced point between two steps and the state evolution is identical
  // to one uninterrupted run().
  while (engine.cycle() < total) {
    if (ckpt.should_abort && ckpt.should_abort()) {
      throw PointAborted(engine.cycle());
    }
    uint64_t target = total;
    if (ckpt.checkpoint_every != 0) {
      const uint64_t boundary =
          (engine.cycle() / ckpt.checkpoint_every + 1) * ckpt.checkpoint_every;
      target = std::min(total, boundary);
    }
    engine.run(target - engine.cycle());
    if (ckpt.on_checkpoint && ckpt.checkpoint_every != 0 &&
        engine.cycle() < total) {
      Snapshot snap;
      snap.key = ckpt.key;
      engine.save_state(&snap);
      for (uint32_t s = 0; s < num_monitors; ++s) {
        StateSink sink;
        monitors[s].save_state(sink);
        snap.add("monitor" + std::to_string(s), sink.take());
      }
      ckpt.on_checkpoint(engine.cycle(), snap.serialize());
    }
  }

  LatencyMonitor& monitor = monitors.front();
  for (uint32_t s = 1; s < num_monitors; ++s) monitor.absorb(monitors[s]);

  if (counters_out != nullptr) {
    const Cluster::FabricStats fs = cluster.fabric_stats();
    TrafficCounters& c = *counters_out;
    c.generated = monitor.generated();
    c.injected = monitor.injected();
    c.completed = monitor.completed();
    c.completed_in_window = monitor.completed_in_window();
    c.tile_req_traversals = fs.tile_req_traversals;
    c.tile_resp_traversals = fs.tile_resp_traversals;
    c.dir_traversals = fs.dir_traversals;
    c.remote_resp_traversals = fs.remote_resp_traversals;
    c.group_local_traversals = fs.group_local_traversals;
    c.butterfly_traversals = fs.butterfly_traversals;
    c.bank_accesses = fs.bank_accesses;
    c.bank_stall_cycles = fs.bank_stall_cycles;
    c.final_cycle = engine.cycle();
  }

  TrafficPoint p;
  p.offered = ecfg.lambda;
  const double window = static_cast<double>(ecfg.measure_cycles);
  const double cores = static_cast<double>(ccfg.num_cores());
  p.generated = static_cast<double>(monitor.generated()) / (window * cores);
  p.accepted =
      static_cast<double>(monitor.completed_in_window()) / (window * cores);
  p.avg_latency = monitor.avg_latency();
  p.p95_latency = monitor.p95_latency();
  p.max_latency = monitor.max_latency();
  p.completed = monitor.completed();
  return p;
}

std::vector<TrafficPoint> sweep_load(const TrafficExperimentConfig& base,
                                     const std::vector<double>& loads) {
  std::vector<TrafficPoint> out;
  out.reserve(loads.size());
  for (double l : loads) {
    TrafficExperimentConfig cfg = base;
    cfg.lambda = l;
    out.push_back(run_traffic_point(cfg));
  }
  return out;
}

}  // namespace mempool
