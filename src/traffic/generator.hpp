#pragma once
// Synthetic traffic generator (Section V-A): "Each core is replaced by a
// synthetic traffic generator, which generates new requests following a
// Poisson process of rate λ. The requests have a random uniformly distributed
// destination memory bank."
//
// For the hybrid-addressing analysis (Section V-B) the generator targets the
// own tile's sequential region with probability p_local and the interleaved
// region otherwise.
//
// The source queue is open-loop: arrivals accumulate regardless of fabric
// backpressure and at most one request is injected per cycle. Latency is
// measured from generation (birth) to response arrival, so queueing delay is
// included and the average explodes past the saturation load, as in Fig. 5b.

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "noc/monitor.hpp"
#include "sim/engine.hpp"

namespace mempool {

struct TrafficConfig {
  double lambda = 0.1;      ///< Requests per core per cycle (Poisson rate).
  double p_local_seq = 0.0; ///< P(target own tile's sequential region).
  uint64_t seed = 1;
  uint64_t stop_generation_at = UINT64_MAX;  ///< Drain phase start.
};

class TrafficGenerator final : public Client {
 public:
  TrafficGenerator(std::string name, uint16_t id, uint16_t tile,
                   const ClusterConfig& cfg, const MemoryLayout* layout,
                   const Engine* engine, const TrafficConfig& tcfg,
                   LatencyMonitor* monitor);

  void deliver(const Packet& resp) override;
  void evaluate(uint64_t cycle) override;

  std::size_t queue_depth() const { return queue_.size(); }
  uint64_t generated() const { return generated_; }
  uint64_t completed() const { return completed_; }

 private:
  uint32_t draw_address();

  const ClusterConfig* cfg_;
  const MemoryLayout* layout_;
  const Engine* engine_;
  TrafficConfig tcfg_;
  LatencyMonitor* monitor_;
  Rng rng_;
  std::deque<Packet> queue_;
  uint64_t generated_ = 0;
  uint64_t completed_ = 0;
  uint16_t seq_ = 0;
};

}  // namespace mempool
