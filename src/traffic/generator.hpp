#pragma once
// Synthetic traffic generator (Section V-A): "Each core is replaced by a
// synthetic traffic generator, which generates new requests following a
// Poisson process of rate λ. The requests have a random uniformly distributed
// destination memory bank."
//
// For the hybrid-addressing analysis (Section V-B) the generator targets the
// own tile's sequential region with probability p_local and the interleaved
// region otherwise.
//
// Arrival sampling is event-driven but distribution-identical to drawing a
// Poisson(λ) count every cycle: the gap to the next cycle with >= 1 arrival
// is geometric with success probability 1 - e^-λ, and the count on that cycle
// is Poisson conditioned on being nonzero. Between arrival events the
// generator registers a timed wake (Engine::wake_at) and sleeps, so a
// mostly-idle cluster costs nothing to simulate; under the dense engine the
// same state machine simply ignores the evaluate() calls before the scheduled
// arrival cycle — both engines see the identical RNG stream and traffic.
//
// The source queue is open-loop: arrivals accumulate regardless of fabric
// backpressure and at most one request is injected per cycle. Latency is
// measured from generation (birth) to response arrival, so queueing delay is
// included and the average explodes past the saturation load, as in Fig. 5b.

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "noc/monitor.hpp"
#include "sim/engine.hpp"

namespace mempool {

struct TrafficConfig {
  double lambda = 0.1;      ///< Requests per core per cycle (Poisson rate).
  double p_local_seq = 0.0; ///< P(target own tile's sequential region).
  uint64_t seed = 1;
  uint64_t stop_generation_at = UINT64_MAX;  ///< Drain phase start.
};

/// Per-generator RNG stream seed: both the experiment seed and the generator
/// id go through SplitMix64 finalization, so no arithmetic structure of the
/// (seed, id) grid survives into the xoshiro state. (A plain
/// `seed * gamma + id` mix collapses to `id` for seed == 0, correlating all
/// generators of the cluster.) Exposed for the decorrelation test.
constexpr uint64_t traffic_stream_seed(uint64_t seed, uint16_t id) {
  return splitmix64(splitmix64(seed) ^ (id + 1ull));
}

class TrafficGenerator final : public Client {
 public:
  TrafficGenerator(std::string name, uint16_t id, uint16_t tile,
                   const ClusterConfig& cfg, const MemoryLayout* layout,
                   Engine* engine, const TrafficConfig& tcfg,
                   LatencyMonitor* monitor);

  void deliver(const Packet& resp) override;
  void evaluate(uint64_t cycle) override;

  /// Activity contract: with the source queue flushed the generator needs no
  /// evaluation before its next scheduled arrival event, for which a timed
  /// wake is armed (or ever, once the generation window has closed).
  bool idle() const override {
    if (!queue_.empty()) return false;
    const uint64_t cycle = engine_->cycle();
    if (cycle >= tcfg_.stop_generation_at) return true;
    return arrivals_init_ && next_arrival_ != cycle;
  }

  /// DRC self-description: request-port edges (via Client) plus
  /// self-generated work (Poisson arrivals on the timer wheel).
  void describe(GraphVisitor& v) const override {
    Client::describe(v);
    v.self_ticking();
  }

  /// Checkpoint: RNG stream, arrival schedule, source queue, counters.
  /// load_state re-arms the pending arrival wake.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

  std::size_t queue_depth() const { return queue_.size(); }
  uint64_t generated() const { return generated_; }
  uint64_t completed() const { return completed_; }

 private:
  uint32_t draw_address();
  /// Sample the gap to the next nonzero-arrival cycle (>= @p from) and arm
  /// the timed wake for it.
  void schedule_next_arrival(uint64_t from);
  /// Sample the arrival count of an arrival cycle: Poisson(λ) | count >= 1.
  uint32_t draw_arrival_count();

  const ClusterConfig* cfg_;
  const MemoryLayout* layout_;
  Engine* engine_;
  TrafficConfig tcfg_;
  LatencyMonitor* monitor_;
  Rng rng_;
  double p_zero_ = 1.0;      ///< e^-λ: P(no arrival in a cycle).
  double p_nonzero_ = 0.0;   ///< -expm1(-λ), kept for precision at small λ.
  uint64_t next_arrival_ = UINT64_MAX;
  bool arrivals_init_ = false;
  std::deque<Packet> queue_;
  uint64_t generated_ = 0;
  uint64_t completed_ = 0;
  uint16_t seq_ = 0;
};

}  // namespace mempool
