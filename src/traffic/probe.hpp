#pragma once
// Single-load probe client: issues one armed load at a time and records the
// response's round-trip timing. This is the measurement instrument behind
// the zero-load latency table (T1), the micro_sim_speed zero-load workload,
// and the latency unit tests — one implementation so the probing protocol
// (packet construction, +1 response-phase accounting) cannot diverge.

#include <cstdint>
#include <string>

#include "core/client.hpp"
#include "core/layout.hpp"

namespace mempool {

class ProbeClient final : public Client {
 public:
  ProbeClient(uint16_t id, uint16_t tile, const MemoryLayout* layout)
      : Client("probe" + std::to_string(id), id, tile), layout_(layout) {}

  /// Arm a single load to @p cpu_addr, issued at the next evaluate().
  void arm(uint32_t cpu_addr) {
    armed_ = true;
    addr_ = cpu_addr;
  }

  void deliver(const Packet& p) override {
    // The response phase of cycle C runs before the clients evaluate, so our
    // last evaluate() was at C-1.
    response_cycle_ = last_cycle_ + 1;
    data_ = p.data;
    ++responses_;
  }

  void evaluate(uint64_t cycle) override {
    last_cycle_ = cycle;
    if (armed_) {
      Packet p;
      p.op = MemOp::kLoad;
      p.src = id_;
      p.src_tile = tile_;
      p.birth = cycle;
      layout_->route(p, addr_);
      if (port_->try_issue(p)) {
        armed_ = false;
        issue_cycle_ = cycle;
      }
    }
  }

  uint64_t issue_cycle() const { return issue_cycle_; }
  uint64_t response_cycle() const { return response_cycle_; }
  uint64_t latency() const { return response_cycle_ - issue_cycle_; }
  uint32_t data() const { return data_; }
  uint32_t responses() const { return responses_; }

 private:
  const MemoryLayout* layout_;
  bool armed_ = false;
  uint32_t addr_ = 0;
  uint32_t data_ = 0;
  uint32_t responses_ = 0;
  uint64_t issue_cycle_ = 0;
  uint64_t response_cycle_ = 0;
  uint64_t last_cycle_ = 0;
};

}  // namespace mempool
