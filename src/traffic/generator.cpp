#include "traffic/generator.hpp"

#include "common/check.hpp"

namespace mempool {

TrafficGenerator::TrafficGenerator(std::string name, uint16_t id,
                                   uint16_t tile, const ClusterConfig& cfg,
                                   const MemoryLayout* layout,
                                   const Engine* engine,
                                   const TrafficConfig& tcfg,
                                   LatencyMonitor* monitor)
    : Client(std::move(name), id, tile),
      cfg_(&cfg),
      layout_(layout),
      engine_(engine),
      tcfg_(tcfg),
      monitor_(monitor),
      rng_(tcfg.seed * 0x9E3779B97F4A7C15ull + id + 1) {
  MEMPOOL_CHECK(layout_ != nullptr && engine_ != nullptr);
  MEMPOOL_CHECK(tcfg_.lambda >= 0.0);
  MEMPOOL_CHECK(tcfg_.p_local_seq >= 0.0 && tcfg_.p_local_seq <= 1.0);
}

uint32_t TrafficGenerator::draw_address() {
  const Scrambler& scr = layout_->scrambler();
  if (tcfg_.p_local_seq > 0.0 && rng_.next_bool(tcfg_.p_local_seq)) {
    // Own tile's sequential region (word-aligned uniform).
    const uint32_t base = scr.tile_seq_base(tile_);
    const uint32_t words = scr.seq_region_bytes() / 4;
    return base + 4 * static_cast<uint32_t>(rng_.next_below(words));
  }
  if (scr.enabled()) {
    // Interleaved region: uniform across all banks of all tiles.
    const uint32_t base = scr.seq_total_bytes();
    const uint32_t words = (layout_->map().spm_bytes() - base) / 4;
    return base + 4 * static_cast<uint32_t>(rng_.next_below(words));
  }
  // Fully interleaved map: uniform over the whole SPM = uniform over banks.
  const uint32_t words = layout_->map().spm_bytes() / 4;
  return 4 * static_cast<uint32_t>(rng_.next_below(words));
}

void TrafficGenerator::deliver(const Packet& resp) {
  ++completed_;
  if (monitor_) monitor_->on_response(engine_->cycle(), resp.birth);
}

void TrafficGenerator::evaluate(uint64_t cycle) {
  // Open-loop Poisson arrivals.
  if (cycle < tcfg_.stop_generation_at) {
    const uint32_t arrivals = rng_.next_poisson(tcfg_.lambda);
    for (uint32_t i = 0; i < arrivals; ++i) {
      Packet p;
      p.op = MemOp::kLoad;
      p.src = id_;
      p.src_tile = tile_;
      p.tag = seq_++;
      p.birth = cycle;
      layout_->route(p, draw_address());
      queue_.push_back(p);
      ++generated_;
      if (monitor_) monitor_->on_generated(cycle);
    }
  }
  // Inject at most one request per cycle (the core's single LSU port).
  if (!queue_.empty() && port_ != nullptr) {
    if (port_->try_issue(queue_.front())) {
      if (monitor_) monitor_->on_injected(cycle);
      queue_.pop_front();
    }
  }
}

}  // namespace mempool
