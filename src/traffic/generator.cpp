#include "traffic/generator.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mempool {

TrafficGenerator::TrafficGenerator(std::string name, uint16_t id,
                                   uint16_t tile, const ClusterConfig& cfg,
                                   const MemoryLayout* layout, Engine* engine,
                                   const TrafficConfig& tcfg,
                                   LatencyMonitor* monitor)
    : Client(std::move(name), id, tile),
      cfg_(&cfg),
      layout_(layout),
      engine_(engine),
      tcfg_(tcfg),
      monitor_(monitor),
      rng_(traffic_stream_seed(tcfg.seed, id)) {
  MEMPOOL_CHECK(layout_ != nullptr && engine_ != nullptr);
  MEMPOOL_CHECK(tcfg_.lambda >= 0.0);
  MEMPOOL_CHECK(tcfg_.p_local_seq >= 0.0 && tcfg_.p_local_seq <= 1.0);
  p_zero_ = std::exp(-tcfg_.lambda);
  p_nonzero_ = -std::expm1(-tcfg_.lambda);
}

uint32_t TrafficGenerator::draw_address() {
  const Scrambler& scr = layout_->scrambler();
  if (tcfg_.p_local_seq > 0.0 && rng_.next_bool(tcfg_.p_local_seq)) {
    // Own tile's sequential region (word-aligned uniform).
    const uint32_t base = scr.tile_seq_base(tile_);
    const uint32_t words = scr.seq_region_bytes() / 4;
    return base + 4 * static_cast<uint32_t>(rng_.next_below(words));
  }
  if (scr.enabled()) {
    // Interleaved region: uniform across all banks of all tiles.
    const uint32_t base = scr.seq_total_bytes();
    const uint32_t words = (layout_->map().spm_bytes() - base) / 4;
    return base + 4 * static_cast<uint32_t>(rng_.next_below(words));
  }
  // Fully interleaved map: uniform over the whole SPM = uniform over banks.
  const uint32_t words = layout_->map().spm_bytes() / 4;
  return 4 * static_cast<uint32_t>(rng_.next_below(words));
}

void TrafficGenerator::schedule_next_arrival(uint64_t from) {
  next_arrival_ = UINT64_MAX;
  if (tcfg_.lambda <= 0.0) return;
  // Gap G >= 1 to the next cycle with >= 1 arrival: geometric with success
  // probability p_nonzero_; inversion with ln(q) = -λ exactly.
  const double u = 1.0 - rng_.next_double();  // (0, 1]
  const double g = std::floor(std::log(u) / -tcfg_.lambda);
  if (!(g < 1e18)) return;  // effectively never (also catches inf/NaN)
  const uint64_t arrival = from + static_cast<uint64_t>(g);
  if (arrival >= tcfg_.stop_generation_at || arrival < from) return;
  next_arrival_ = arrival;
  engine_->wake_at(arrival, this);
}

uint32_t TrafficGenerator::draw_arrival_count() {
  // K ~ Poisson(λ) conditioned on K >= 1, by inversion over the pmf
  // q·λ^k/k! scaled into the conditional mass 1 - q.
  const double u = rng_.next_double() * p_nonzero_;
  double term = p_zero_ * tcfg_.lambda;  // pmf(1)
  double cum = term;
  uint32_t k = 1;
  while (cum <= u && k < 4096) {
    ++k;
    term *= tcfg_.lambda / k;
    cum += term;
  }
  return k;
}

void TrafficGenerator::deliver(const Packet& resp) {
  ++completed_;
  if (monitor_) monitor_->on_response(engine_->cycle(), resp.birth);
}

void TrafficGenerator::save_state(StateSink& s) const {
  uint64_t rng[4];
  rng_.save_state(rng);
  for (const uint64_t w : rng) s.u64(w);
  s.u64(next_arrival_);
  s.b(arrivals_init_);
  s.u64(generated_);
  s.u64(completed_);
  s.u16(seq_);
  s.u32(static_cast<uint32_t>(queue_.size()));
  for (const Packet& p : queue_) save_item(s, p);
}

void TrafficGenerator::load_state(StateSource& s) {
  uint64_t rng[4];
  for (uint64_t& w : rng) w = s.u64();
  rng_.load_state(rng);
  next_arrival_ = s.u64();
  arrivals_init_ = s.b();
  generated_ = s.u64();
  completed_ = s.u64();
  seq_ = s.u16();
  queue_.clear();
  const uint32_t n = s.u32();
  for (uint32_t i = 0; i < n; ++i) {
    Packet p;
    load_item(s, &p);
    queue_.push_back(p);
  }
  // Re-arm the pending arrival event. A next_arrival_ at or before the
  // restored cycle wakes immediately, which matches the uninterrupted run:
  // the timer for cycle C fires at the start of step C, i.e. after the
  // save point.
  if (next_arrival_ != UINT64_MAX) engine_->wake_at(next_arrival_, this);
}

void TrafficGenerator::evaluate(uint64_t cycle) {
  // Open-loop Poisson arrivals, sampled per arrival event (see header).
  if (cycle < tcfg_.stop_generation_at) {
    if (!arrivals_init_) {
      arrivals_init_ = true;
      schedule_next_arrival(cycle);
    }
    if (cycle == next_arrival_) {
      const uint32_t arrivals = draw_arrival_count();
      for (uint32_t i = 0; i < arrivals; ++i) {
        Packet p;
        p.op = MemOp::kLoad;
        p.src = id_;
        p.src_tile = tile_;
        p.tag = seq_++;
        p.birth = cycle;
        layout_->route(p, draw_address());
        queue_.push_back(p);
        ++generated_;
        if (monitor_) monitor_->on_generated(cycle);
      }
      schedule_next_arrival(cycle + 1);
    }
  }
  // Inject at most one request per cycle (the core's single LSU port).
  if (!queue_.empty() && port_ != nullptr) {
    if (port_->try_issue(queue_.front())) {
      if (monitor_) monitor_->on_injected(cycle);
      queue_.pop_front();
    }
  }
}

}  // namespace mempool
