#pragma once
// Execution-driven MemPool system: cluster + Snitch cores + program image.
// This is the facade the examples, kernels and Figure-7 benches use.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/cluster_config.hpp"
#include "core/snitch.hpp"
#include "isa/encoding.hpp"
#include "mem/imem.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"

namespace mempool::runner {
class ShardCrew;
}  // namespace mempool::runner

namespace mempool {

class System {
 public:
  explicit System(const ClusterConfig& cfg);
  ~System();

  /// Select the scheduler stepping this system (default: active). Sharded
  /// mode partitions the cluster along the fabric's groups and steps the
  /// shards on @p sim_threads threads (leader + pool helpers owned by the
  /// system), bit-identically to the sequential engines. Must be called
  /// before the first run().
  void configure_engine(EngineMode mode, unsigned sim_threads = 1);

  /// Load the program image and instantiate one Snitch core per core slot
  /// (all cores boot at @p boot_pc, defaulting to the image base). Must be
  /// called exactly once before run().
  void load_program(const std::vector<uint32_t>& words,
                    uint32_t base = InstrMem::kBase, uint32_t boot_pc = 0);

  /// Backdoor data access in CPU address space (scrambler applied), used to
  /// preload inputs and read back results — the RTL testbench equivalent.
  void write_word(uint32_t cpu_addr, uint32_t value);
  uint32_t read_word(uint32_t cpu_addr) const;
  void write_words(uint32_t cpu_addr, const std::vector<uint32_t>& values);
  std::vector<uint32_t> read_words(uint32_t cpu_addr, std::size_t count) const;

  struct RunResult {
    uint64_t cycles = 0;      ///< Cycles simulated by this run() call.
    bool all_halted = false;  ///< Every core wrote EXIT / executed ecall.
  };

  /// Advance until every core halted or @p max_cycles elapsed.
  RunResult run(uint64_t max_cycles);

  SnitchCore& core(uint32_t i) { return *cores_[i]; }
  const SnitchCore& core(uint32_t i) const { return *cores_[i]; }
  uint32_t num_cores() const { return cfg_.num_cores(); }
  Cluster& cluster() { return *cluster_; }
  const Cluster& cluster() const { return *cluster_; }
  Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Concatenated console output of all cores (kCtrlPutChar writes).
  std::string console() const;

  /// Sum of a per-core stat over all cores.
  SnitchCore::Stats aggregate_core_stats() const;

 private:
  ClusterConfig cfg_;
  InstrMem imem_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<runner::ShardCrew> crew_;  // configure_engine(kSharded)
  Engine engine_;
  std::vector<isa::Instr> decoded_;
  uint32_t program_base_ = InstrMem::kBase;
  std::vector<std::unique_ptr<SnitchCore>> cores_;
  bool loaded_ = false;
  bool engine_configured_ = false;
};

}  // namespace mempool
