#include "core/tile.hpp"

#include "common/check.hpp"

namespace mempool {

namespace {
std::string tile_name(uint32_t index, const char* part) {
  return "tile" + std::to_string(index) + "." + part;
}
}  // namespace

Tile::Tile(uint32_t index, const ClusterConfig& cfg, const InstrMem* imem,
           Arena& arena, std::vector<SpmBank*> banks, bool with_fabric,
           uint32_t num_master_ports, uint32_t num_slave_ports,
           std::vector<BufferMode> slave_req_modes,
           std::vector<BufferMode> slave_resp_modes, RouteFn dir_route,
           RouteFn bank_resp_route)
    : index_(index), cores_(cfg.cores_per_tile), banks_(std::move(banks)) {
  MEMPOOL_CHECK_MSG(banks_.size() == cfg.banks_per_tile,
                    "memory system built " << banks_.size()
                                           << " banks for tile " << index
                                           << ", config wants "
                                           << cfg.banks_per_tile);
  icache_ = arena.make<ICache>(tile_name(index, "icache"), cfg.icache, imem);
  if (!with_fabric) {
    MEMPOOL_CHECK(num_master_ports == 0 && num_slave_ports == 0);
    return;
  }

  MEMPOOL_CHECK(slave_req_modes.size() == num_slave_ports);
  MEMPOOL_CHECK(slave_resp_modes.size() == num_slave_ports);

  // Merged request crossbar: local core ports are combinational (dedicated
  // single-cycle paths to the banks); slave port modes come from the cluster.
  std::vector<BufferMode> req_modes(cores_, BufferMode::kCombinational);
  req_modes.insert(req_modes.end(), slave_req_modes.begin(),
                   slave_req_modes.end());
  req_xbar_ = arena.make<XbarSwitch>(
      tile_name(index, "req_xbar"), req_modes, cfg.banks_per_tile,
      [](const Packet& p) { return static_cast<unsigned>(p.dst_bank); },
      /*in_capacity=*/2, &arena);
  for (uint32_t b = 0; b < cfg.banks_per_tile; ++b) {
    req_xbar_->connect_output(b, banks_[b]->request_input());
  }

  // Bank-response crossbar. Its *registered* inputs are the banks' output
  // registers: every bank access pays exactly one cycle here.
  bank_resp_xbar_ = arena.make<XbarSwitch>(
      tile_name(index, "bank_resp_xbar"),
      std::vector<BufferMode>(cfg.banks_per_tile, BufferMode::kRegistered),
      cores_ + num_slave_ports, std::move(bank_resp_route),
      /*in_capacity=*/2, &arena);
  for (uint32_t b = 0; b < cfg.banks_per_tile; ++b) {
    banks_[b]->connect_response(bank_resp_xbar_->input(b));
  }

  // Remote-response interconnect: K slave ports -> local cores.
  if (num_slave_ports > 0) {
    const uint32_t cores = cores_;
    remote_resp_xbar_ = arena.make<XbarSwitch>(
        tile_name(index, "remote_resp_xbar"), slave_resp_modes, cores_,
        [cores](const Packet& p) {
          return static_cast<unsigned>(p.src % cores);
        },
        /*in_capacity=*/2, &arena);
  }

  // Master-port crossbar (Top1 concentrator / TopH direction router).
  if (num_master_ports > 0) {
    MEMPOOL_CHECK(dir_route != nullptr);
    dir_xbar_ = arena.make<XbarSwitch>(
        tile_name(index, "dir_xbar"), cores_, BufferMode::kCombinational,
        num_master_ports, std::move(dir_route), /*in_capacity=*/2, &arena);
  }
}

PacketSink* Tile::core_local_req(uint32_t core_in_tile) {
  MEMPOOL_CHECK(req_xbar_ != nullptr && core_in_tile < cores_);
  return req_xbar_->input(core_in_tile);
}

PacketSink* Tile::slave_req(uint32_t k) {
  MEMPOOL_CHECK(req_xbar_ != nullptr);
  return req_xbar_->input(cores_ + k);
}

PacketSink* Tile::dir_input(uint32_t core_in_tile) {
  MEMPOOL_CHECK(dir_xbar_ != nullptr && core_in_tile < cores_);
  return dir_xbar_->input(core_in_tile);
}

void Tile::connect_dir_output(uint32_t k, PacketSink* sink) {
  MEMPOOL_CHECK(dir_xbar_ != nullptr);
  dir_xbar_->connect_output(k, sink);
}

PacketSink* Tile::resp_slave(uint32_t k) {
  MEMPOOL_CHECK(remote_resp_xbar_ != nullptr);
  return remote_resp_xbar_->input(k);
}

void Tile::connect_resp_remote_output(uint32_t k, PacketSink* sink) {
  MEMPOOL_CHECK(bank_resp_xbar_ != nullptr);
  bank_resp_xbar_->connect_output(cores_ + k, sink);
}

void Tile::connect_clients(const std::vector<Client*>& clients) {
  MEMPOOL_CHECK(clients.size() == cores_);
  client_sinks_.clear();
  client_sinks_.reserve(cores_ * 2);
  for (uint32_t c = 0; c < cores_; ++c) {
    client_sinks_.push_back(std::make_unique<ClientSink>(clients[c]));
    if (bank_resp_xbar_) {
      bank_resp_xbar_->connect_output(c, client_sinks_.back().get());
    }
  }
  if (remote_resp_xbar_) {
    for (uint32_t c = 0; c < cores_; ++c) {
      client_sinks_.push_back(std::make_unique<ClientSink>(clients[c]));
      remote_resp_xbar_->connect_output(c, client_sinks_.back().get());
    }
  }
}

void Tile::add_resp_early(Engine& engine, uint32_t shard) {
  if (bank_resp_xbar_) {
    engine.add_component(bank_resp_xbar_, shard);
    bank_resp_xbar_->register_clocked(engine, shard);
  }
}

void Tile::add_resp_late(Engine& engine, uint32_t shard) {
  if (remote_resp_xbar_) {
    engine.add_component(remote_resp_xbar_, shard);
    remote_resp_xbar_->register_clocked(engine, shard);
  }
}

void Tile::add_fetch(Engine& engine, uint32_t shard) {
  engine.add_component(icache_, shard);
}

void Tile::add_req_early(Engine& engine, uint32_t shard) {
  if (dir_xbar_) {
    engine.add_component(dir_xbar_, shard);
    dir_xbar_->register_clocked(engine, shard);
  }
}

void Tile::add_req_late(Engine& engine, uint32_t shard) {
  if (req_xbar_) {
    engine.add_component(req_xbar_, shard);
    req_xbar_->register_clocked(engine, shard);
  }
  for (SpmBank* b : banks_) {
    engine.add_component(b, shard);
    b->register_clocked(engine, shard);
  }
}

bool Tile::fabric_idle() const {
  if (req_xbar_ && !req_xbar_->idle()) return false;
  if (bank_resp_xbar_ && !bank_resp_xbar_->idle()) return false;
  if (remote_resp_xbar_ && !remote_resp_xbar_->idle()) return false;
  if (dir_xbar_ && !dir_xbar_->idle()) return false;
  return true;
}

}  // namespace mempool
