#include "core/snitch.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "mem/dma.hpp"

namespace mempool {

using isa::Instr;
using isa::Kind;

SnitchCore::SnitchCore(std::string name, uint16_t id, uint16_t tile,
                       const ClusterConfig& cfg, const MemoryLayout* layout,
                       ICache* icache, const std::vector<Instr>* program,
                       uint32_t program_base, uint32_t boot_pc)
    : Client(std::move(name), id, tile),
      cfg_(&cfg),
      layout_(layout),
      icache_(icache),
      program_(program),
      program_base_(program_base),
      pc_(boot_pc),
      rob_(cfg.core.num_outstanding) {
  MEMPOOL_CHECK(layout_ != nullptr && icache_ != nullptr && program_ != nullptr);
}

void SnitchCore::deliver(const Packet& resp) {
  // Responses are delivered in the response phase of the cycle after our
  // last evaluate(), hence the +1.
  stats_.resp_latency_sum += last_cycle_ + 1 - resp.birth;
  ++stats_.resp_count;
  rob_.fill(resp.tag, resp.data);
  if (cfg_->core.writeback_on_arrival) {
    // Tagged write-back on arrival: apply the register update immediately;
    // the ROB slot itself is recycled in order at retire.
    const RobEntry& e = rob_.peek(resp.tag);
    writeback(e);
  }
}

void SnitchCore::writeback(const RobEntry& e) {
  if (e.rd == 0) return;
  uint32_t v = e.data >> (8 * e.byte_offset);
  if (e.width == 1) {
    v = e.sign_extend ? static_cast<uint32_t>(sign_extend(v & 0xFF, 8))
                      : (v & 0xFF);
  } else if (e.width == 2) {
    v = e.sign_extend ? static_cast<uint32_t>(sign_extend(v & 0xFFFF, 16))
                      : (v & 0xFFFF);
  }
  regs_[e.rd] = v;
  mem_pending_[e.rd] = false;
}

DmaPortal& SnitchCore::dma_or_die() const {
  MEMPOOL_CHECK_MSG(dma_ != nullptr,
                    name() << ": DMA CSR access, but memory system '"
                           << cfg_->memory.name
                           << "' has no DMA engine (use --memory tcdm+l2)");
  return *dma_;
}

uint32_t SnitchCore::csr_read(uint16_t csr, uint64_t cycle) const {
  switch (csr) {
    case isa::kCsrMhartid: return id_;
    case isa::kCsrMscratch: return mscratch_;
    case isa::kCsrMcycle: return static_cast<uint32_t>(cycle);
    case isa::kCsrMcycleH: return static_cast<uint32_t>(cycle >> 32);
    case isa::kCsrMinstret: return static_cast<uint32_t>(stats_.instret);
    case isa::kCsrMinstretH: return static_cast<uint32_t>(stats_.instret >> 32);
    case isa::kCsrNumCores: return cfg_->num_cores();
    case isa::kCsrTileId: return tile_;
    case isa::kCsrCoresPerTile: return cfg_->cores_per_tile;
    case isa::kCsrDmaSrc: return dma_src_;
    case isa::kCsrDmaDst: return dma_dst_;
    case isa::kCsrDmaRows: return dma_rows_;
    case isa::kCsrDmaSrcStride: return dma_src_stride_;
    case isa::kCsrDmaDstStride: return dma_dst_stride_;
    case isa::kCsrDmaPending: return dma_or_die().pending(id_);
    default:
      MEMPOOL_CHECK_MSG(false, name() << ": read of unimplemented CSR 0x"
                                      << std::hex << csr);
  }
  return 0;
}

void SnitchCore::csr_write(uint16_t csr, uint32_t value) {
  switch (csr) {
    case isa::kCsrMscratch:
      mscratch_ = value;
      return;
    case isa::kCsrDmaSrc:
      dma_src_ = value;
      return;
    case isa::kCsrDmaDst:
      dma_dst_ = value;
      return;
    case isa::kCsrDmaRows:
      dma_rows_ = value;
      return;
    case isa::kCsrDmaSrcStride:
      dma_src_stride_ = value;
      return;
    case isa::kCsrDmaDstStride:
      dma_dst_stride_ = value;
      return;
    case isa::kCsrDmaStart: {
      DmaDescriptor d;
      d.src = dma_src_;
      d.dst = dma_dst_;
      d.words_per_row = value;
      d.rows = dma_rows_;
      d.src_stride = dma_src_stride_;
      d.dst_stride = dma_dst_stride_;
      dma_or_die().submit(id_, d);
      ++stats_.dma_submits;
      return;
    }
    default:
      MEMPOOL_CHECK_MSG(false, name() << ": write of unimplemented CSR 0x"
                                      << std::hex << csr);
  }
}

void SnitchCore::evaluate(uint64_t cycle) {
  if (halted_) return;
  last_cycle_ = cycle;
  ++stats_.cycles;

  // 1. Retire completed responses from the ROB head. With write-back on
  //    arrival the retire only recycles slots (any number per cycle); with
  //    the strict in-order model it is also the single write-back port.
  if (cfg_->core.writeback_on_arrival) {
    while (rob_.head_ready()) rob_.pop_head();
  } else if (rob_.head_ready()) {
    writeback(rob_.pop_head());
  }

  // 2. Control stall (taken-branch bubble or blocking divide).
  if (next_issue_cycle_ > cycle) {
    ++stats_.stall_ctrl;
    return;
  }

  // 3. Fetch through the shared I$ (hit: same cycle; miss: retry). The
  //    instruction register avoids re-accessing the I$ while stalled.
  if (!ir_valid_ || ir_pc_ != pc_) {
    const auto fetched = icache_->fetch(pc_, cycle);
    if (!fetched.hit) {
      ++stats_.stall_fetch;
      return;
    }
    ir_valid_ = true;
    ir_pc_ = pc_;
  }
  const uint32_t index = (pc_ - program_base_) / 4;
  MEMPOOL_CHECK_MSG(pc_ >= program_base_ && index < program_->size(),
                    name() << ": pc 0x" << std::hex << pc_
                           << " outside the loaded program");
  const Instr& d = (*program_)[index];

  // 4. Scoreboard: every operand (and the destination, for WAW) must be ready.
  auto uses_rs1 = [&] {
    switch (d.kind) {
      case Kind::kLui: case Kind::kAuipc: case Kind::kJal:
      case Kind::kEcall: case Kind::kEbreak: case Kind::kFence:
      case Kind::kCsrrwi: case Kind::kCsrrsi: case Kind::kCsrrci:
        return false;
      default:
        return true;
    }
  };
  auto uses_rs2 = [&] {
    switch (d.kind) {
      case Kind::kBeq: case Kind::kBne: case Kind::kBlt: case Kind::kBge:
      case Kind::kBltu: case Kind::kBgeu:
      case Kind::kSb: case Kind::kSh: case Kind::kSw:
      case Kind::kAdd: case Kind::kSub: case Kind::kSll: case Kind::kSlt:
      case Kind::kSltu: case Kind::kXor: case Kind::kSrl: case Kind::kSra:
      case Kind::kOr: case Kind::kAnd:
      case Kind::kMul: case Kind::kMulh: case Kind::kMulhsu: case Kind::kMulhu:
      case Kind::kDiv: case Kind::kDivu: case Kind::kRem: case Kind::kRemu:
      case Kind::kScW: case Kind::kAmoSwapW: case Kind::kAmoAddW:
      case Kind::kAmoXorW: case Kind::kAmoAndW: case Kind::kAmoOrW:
      case Kind::kAmoMinW: case Kind::kAmoMaxW: case Kind::kAmoMinuW:
      case Kind::kAmoMaxuW:
        return true;
      default:
        return false;
    }
  };
  auto writes_rd = [&] {
    switch (d.kind) {
      case Kind::kBeq: case Kind::kBne: case Kind::kBlt: case Kind::kBge:
      case Kind::kBltu: case Kind::kBgeu:
      case Kind::kSb: case Kind::kSh: case Kind::kSw:
      case Kind::kFence: case Kind::kEcall: case Kind::kEbreak:
        return false;
      default:
        return true;
    }
  };
  if ((uses_rs1() && !reg_ready(d.rs1, cycle)) ||
      (uses_rs2() && !reg_ready(d.rs2, cycle)) ||
      (writes_rd() && d.rd != 0 && !reg_ready(d.rd, cycle))) {
    ++stats_.stall_raw;
    return;
  }

  const uint32_t rs1 = regs_[d.rs1];
  const uint32_t rs2 = regs_[d.rs2];
  const int32_t s1 = static_cast<int32_t>(rs1);
  const int32_t s2 = static_cast<int32_t>(rs2);
  auto wr = [&](uint32_t v) {
    if (d.rd != 0) regs_[d.rd] = v;
  };
  auto next = [&] { pc_ += 4; };
  auto redirect = [&](uint32_t target) {
    pc_ = target;
    next_issue_cycle_ = cycle + cfg_->core.branch_taken_penalty;
  };
  auto branch = [&](bool taken) {
    ++stats_.branches;
    ++stats_.instret;
    if (taken) {
      redirect(pc_ + static_cast<uint32_t>(d.imm));
    } else {
      next();
    }
  };

  // 5. Memory operations: translate, allocate ROB (loads), issue.
  auto issue_memory = [&](MemOp op, uint32_t cpu_addr, uint32_t wdata,
                          uint8_t width, bool sign) -> bool {
    // Testbench peripherals are core-local.
    if (layout_->is_ctrl(cpu_addr)) {
      MEMPOOL_CHECK_MSG(op == MemOp::kStore,
                        name() << ": only stores allowed to control space");
      if (cpu_addr == kCtrlExit) {
        halt(wdata);
      } else if (cpu_addr == kCtrlPutChar) {
        console_.push_back(static_cast<char>(wdata & 0xFF));
      } else {
        MEMPOOL_CHECK_MSG(false, name() << ": bad control address 0x"
                                        << std::hex << cpu_addr);
      }
      ++stats_.instret;
      next();
      return true;
    }
    MEMPOOL_CHECK_MSG(layout_->is_spm(cpu_addr),
                      name() << ": access to unmapped address 0x" << std::hex
                             << cpu_addr << " at pc 0x" << pc_);
    MEMPOOL_CHECK_MSG(cpu_addr % width == 0,
                      name() << ": misaligned " << static_cast<int>(width)
                             << "-byte access to 0x" << std::hex << cpu_addr);
    Packet p;
    p.op = op;
    p.src = id_;
    p.src_tile = tile_;
    p.birth = cycle;
    layout_->route(p, cpu_addr);
    const bool needs_rob = op_has_response(op);
    if (needs_rob && rob_.full()) {
      ++stats_.stall_rob;
      return false;
    }
    if (op == MemOp::kStore) {
      const unsigned off = cpu_addr & 3u;
      p.data = wdata << (8 * off);
      p.be = static_cast<uint8_t>(((1u << width) - 1u) << off);
    } else {
      p.data = wdata;
      p.be = 0xF;
    }
    if (needs_rob) {
      RobEntry meta;
      meta.rd = d.rd;
      meta.width = width;
      meta.sign_extend = sign;
      meta.byte_offset = static_cast<uint8_t>(cpu_addr & 3u);
      // Reserve the tag only after the fabric accepted the packet; peek the
      // tag by allocating and rolling forward (allocate is cheap and the
      // port push below cannot fail after can-accept was established by
      // try_issue itself, so allocate first and issue with the real tag).
      const uint16_t tag = rob_.allocate(meta);
      p.tag = tag;
      if (!port_->try_issue(p)) {
        // Roll back: the entry we just allocated is the newest; retire it
        // by marking done and never exposing it would corrupt ordering, so
        // instead we use the ROB's guarantee that allocate/rollback pairs
        // are only legal for the tail entry.
        rob_.rollback_tail();
        ++stats_.stall_port;
        return false;
      }
      if (d.rd != 0) mem_pending_[d.rd] = true;
    } else {
      if (!port_->try_issue(p)) {
        ++stats_.stall_port;
        return false;
      }
    }
    const bool local = p.dst_tile == tile_;
    switch (op) {
      case MemOp::kLoad:
        ++(local ? stats_.loads_local : stats_.loads_remote);
        break;
      case MemOp::kStore:
        ++(local ? stats_.stores_local : stats_.stores_remote);
        break;
      default:
        ++stats_.amos;
        break;
    }
    ++stats_.instret;
    next();
    return true;
  };

  auto amo = [&](MemOp op) { issue_memory(op, rs1, rs2, 4, false); };

  // 6. Execute.
  switch (d.kind) {
    case Kind::kLui: wr(static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kAuipc: wr(pc_ + static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kJal:
      wr(pc_ + 4);
      ++stats_.branches;
      ++stats_.instret;
      redirect(pc_ + static_cast<uint32_t>(d.imm));
      break;
    case Kind::kJalr: {
      const uint32_t target = (rs1 + static_cast<uint32_t>(d.imm)) & ~1u;
      wr(pc_ + 4);
      ++stats_.branches;
      ++stats_.instret;
      redirect(target);
      break;
    }
    case Kind::kBeq: branch(rs1 == rs2); break;
    case Kind::kBne: branch(rs1 != rs2); break;
    case Kind::kBlt: branch(s1 < s2); break;
    case Kind::kBge: branch(s1 >= s2); break;
    case Kind::kBltu: branch(rs1 < rs2); break;
    case Kind::kBgeu: branch(rs1 >= rs2); break;

    case Kind::kLb: issue_memory(MemOp::kLoad, rs1 + d.imm, 0, 1, true); break;
    case Kind::kLh: issue_memory(MemOp::kLoad, rs1 + d.imm, 0, 2, true); break;
    case Kind::kLw: issue_memory(MemOp::kLoad, rs1 + d.imm, 0, 4, false); break;
    case Kind::kLbu: issue_memory(MemOp::kLoad, rs1 + d.imm, 0, 1, false); break;
    case Kind::kLhu: issue_memory(MemOp::kLoad, rs1 + d.imm, 0, 2, false); break;
    case Kind::kSb: issue_memory(MemOp::kStore, rs1 + d.imm, rs2 & 0xFF, 1, false); break;
    case Kind::kSh: issue_memory(MemOp::kStore, rs1 + d.imm, rs2 & 0xFFFF, 2, false); break;
    case Kind::kSw: issue_memory(MemOp::kStore, rs1 + d.imm, rs2, 4, false); break;

    case Kind::kAddi: wr(rs1 + static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSlti: wr(s1 < d.imm ? 1 : 0); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSltiu: wr(rs1 < static_cast<uint32_t>(d.imm) ? 1 : 0); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kXori: wr(rs1 ^ static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kOri: wr(rs1 | static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kAndi: wr(rs1 & static_cast<uint32_t>(d.imm)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSlli: wr(rs1 << d.imm); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSrli: wr(rs1 >> d.imm); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSrai: wr(static_cast<uint32_t>(s1 >> d.imm)); ++stats_.alu; ++stats_.instret; next(); break;

    case Kind::kAdd: wr(rs1 + rs2); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSub: wr(rs1 - rs2); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSll: wr(rs1 << (rs2 & 31)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSlt: wr(s1 < s2 ? 1 : 0); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSltu: wr(rs1 < rs2 ? 1 : 0); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kXor: wr(rs1 ^ rs2); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSrl: wr(rs1 >> (rs2 & 31)); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kSra: wr(static_cast<uint32_t>(s1 >> (rs2 & 31))); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kOr: wr(rs1 | rs2); ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kAnd: wr(rs1 & rs2); ++stats_.alu; ++stats_.instret; next(); break;

    case Kind::kMul:
      wr(static_cast<uint32_t>(static_cast<int64_t>(s1) * s2));
      if (d.rd != 0) alu_ready_[d.rd] = cycle + cfg_->core.mul_latency;
      ++stats_.mul; ++stats_.instret; next();
      break;
    case Kind::kMulh:
      wr(static_cast<uint32_t>(
          (static_cast<int64_t>(s1) * static_cast<int64_t>(s2)) >> 32));
      if (d.rd != 0) alu_ready_[d.rd] = cycle + cfg_->core.mul_latency;
      ++stats_.mul; ++stats_.instret; next();
      break;
    case Kind::kMulhsu:
      wr(static_cast<uint32_t>(
          (static_cast<int64_t>(s1) * static_cast<uint64_t>(rs2)) >> 32));
      if (d.rd != 0) alu_ready_[d.rd] = cycle + cfg_->core.mul_latency;
      ++stats_.mul; ++stats_.instret; next();
      break;
    case Kind::kMulhu:
      wr(static_cast<uint32_t>(
          (static_cast<uint64_t>(rs1) * static_cast<uint64_t>(rs2)) >> 32));
      if (d.rd != 0) alu_ready_[d.rd] = cycle + cfg_->core.mul_latency;
      ++stats_.mul; ++stats_.instret; next();
      break;
    case Kind::kDiv:
      wr(rs2 == 0 ? 0xFFFFFFFFu
                  : (s1 == INT32_MIN && s2 == -1
                         ? static_cast<uint32_t>(INT32_MIN)
                         : static_cast<uint32_t>(s1 / s2)));
      next_issue_cycle_ = cycle + cfg_->core.div_latency;
      ++stats_.div; ++stats_.instret; next();
      break;
    case Kind::kDivu:
      wr(rs2 == 0 ? 0xFFFFFFFFu : rs1 / rs2);
      next_issue_cycle_ = cycle + cfg_->core.div_latency;
      ++stats_.div; ++stats_.instret; next();
      break;
    case Kind::kRem:
      wr(rs2 == 0 ? rs1
                  : (s1 == INT32_MIN && s2 == -1
                         ? 0u
                         : static_cast<uint32_t>(s1 % s2)));
      next_issue_cycle_ = cycle + cfg_->core.div_latency;
      ++stats_.div; ++stats_.instret; next();
      break;
    case Kind::kRemu:
      wr(rs2 == 0 ? rs1 : rs1 % rs2);
      next_issue_cycle_ = cycle + cfg_->core.div_latency;
      ++stats_.div; ++stats_.instret; next();
      break;

    case Kind::kFence: ++stats_.alu; ++stats_.instret; next(); break;
    case Kind::kEcall: halt(regs_[10]); ++stats_.instret; break;
    case Kind::kEbreak: halt(1); ++stats_.instret; break;

    case Kind::kCsrrw:
      wr(d.rd != 0 ? csr_read(d.csr, cycle) : 0);
      csr_write(d.csr, rs1);
      ++stats_.alu; ++stats_.instret; next();
      break;
    case Kind::kCsrrs:
      wr(csr_read(d.csr, cycle));
      if (d.rs1 != 0) csr_write(d.csr, csr_read(d.csr, cycle) | rs1);
      ++stats_.alu; ++stats_.instret; next();
      break;
    case Kind::kCsrrc:
      wr(csr_read(d.csr, cycle));
      if (d.rs1 != 0) csr_write(d.csr, csr_read(d.csr, cycle) & ~rs1);
      ++stats_.alu; ++stats_.instret; next();
      break;
    case Kind::kCsrrwi:
      wr(d.rd != 0 ? csr_read(d.csr, cycle) : 0);
      csr_write(d.csr, static_cast<uint32_t>(d.imm));
      ++stats_.alu; ++stats_.instret; next();
      break;
    case Kind::kCsrrsi:
      wr(csr_read(d.csr, cycle));
      if (d.imm != 0) csr_write(d.csr, csr_read(d.csr, cycle) | static_cast<uint32_t>(d.imm));
      ++stats_.alu; ++stats_.instret; next();
      break;
    case Kind::kCsrrci:
      wr(csr_read(d.csr, cycle));
      if (d.imm != 0) csr_write(d.csr, csr_read(d.csr, cycle) & ~static_cast<uint32_t>(d.imm));
      ++stats_.alu; ++stats_.instret; next();
      break;

    case Kind::kLrW: issue_memory(MemOp::kLoadReserved, rs1, 0, 4, false); break;
    case Kind::kScW: amo(MemOp::kStoreConditional); break;
    case Kind::kAmoSwapW: amo(MemOp::kAmoSwap); break;
    case Kind::kAmoAddW: amo(MemOp::kAmoAdd); break;
    case Kind::kAmoXorW: amo(MemOp::kAmoXor); break;
    case Kind::kAmoAndW: amo(MemOp::kAmoAnd); break;
    case Kind::kAmoOrW: amo(MemOp::kAmoOr); break;
    case Kind::kAmoMinW: amo(MemOp::kAmoMin); break;
    case Kind::kAmoMaxW: amo(MemOp::kAmoMax); break;
    case Kind::kAmoMinuW: amo(MemOp::kAmoMinu); break;
    case Kind::kAmoMaxuW: amo(MemOp::kAmoMaxu); break;

    case Kind::kIllegal:
      MEMPOOL_CHECK_MSG(false, name() << ": illegal instruction 0x" << std::hex
                                      << d.raw << " at pc 0x" << pc_);
  }
}

void SnitchCore::describe(GraphVisitor& v) const {
  Client::describe(v);  // request-port edges
  v.self_ticking();     // a running core issues/stalls every cycle
  if (icache_ != nullptr) v.wakes(icache_, "fetch");
  if (dma_ != nullptr && dma_->drc_component() != nullptr) {
    v.writes_terminal(dma_->drc_component(), "dma.submit");
  }
}

void SnitchCore::save_state(StateSink& s) const {
  for (const uint32_t r : regs_) s.u32(r);
  s.u32(pc_);
  s.b(halted_);
  s.u32(exit_code_);
  s.str(console_);
  rob_.save_state(s);
  for (const bool p : mem_pending_) s.b(p);
  for (const uint64_t c : alu_ready_) s.u64(c);
  s.u64(next_issue_cycle_);
  s.b(ir_valid_);
  s.u32(ir_pc_);
  s.u64(last_cycle_);
  s.u32(mscratch_);
  s.u32(dma_src_);
  s.u32(dma_dst_);
  s.u32(dma_rows_);
  s.u32(dma_src_stride_);
  s.u32(dma_dst_stride_);
  s.u64(stats_.instret);
  s.u64(stats_.cycles);
  s.u64(stats_.stall_fetch);
  s.u64(stats_.stall_raw);
  s.u64(stats_.stall_rob);
  s.u64(stats_.stall_port);
  s.u64(stats_.stall_ctrl);
  s.u64(stats_.alu);
  s.u64(stats_.mul);
  s.u64(stats_.div);
  s.u64(stats_.branches);
  s.u64(stats_.loads_local);
  s.u64(stats_.loads_remote);
  s.u64(stats_.stores_local);
  s.u64(stats_.stores_remote);
  s.u64(stats_.amos);
  s.u64(stats_.dma_submits);
  s.u64(stats_.resp_latency_sum);
  s.u64(stats_.resp_count);
}

void SnitchCore::load_state(StateSource& s) {
  for (uint32_t& r : regs_) r = s.u32();
  pc_ = s.u32();
  halted_ = s.b();
  exit_code_ = s.u32();
  console_ = s.str();
  rob_.load_state(s);
  for (bool& p : mem_pending_) p = s.b();
  for (uint64_t& c : alu_ready_) c = s.u64();
  next_issue_cycle_ = s.u64();
  ir_valid_ = s.b();
  ir_pc_ = s.u32();
  last_cycle_ = s.u64();
  mscratch_ = s.u32();
  dma_src_ = s.u32();
  dma_dst_ = s.u32();
  dma_rows_ = s.u32();
  dma_src_stride_ = s.u32();
  dma_dst_stride_ = s.u32();
  stats_.instret = s.u64();
  stats_.cycles = s.u64();
  stats_.stall_fetch = s.u64();
  stats_.stall_raw = s.u64();
  stats_.stall_rob = s.u64();
  stats_.stall_port = s.u64();
  stats_.stall_ctrl = s.u64();
  stats_.alu = s.u64();
  stats_.mul = s.u64();
  stats_.div = s.u64();
  stats_.branches = s.u64();
  stats_.loads_local = s.u64();
  stats_.loads_remote = s.u64();
  stats_.stores_local = s.u64();
  stats_.stores_remote = s.u64();
  stats_.amos = s.u64();
  stats_.dma_submits = s.u64();
  stats_.resp_latency_sum = s.u64();
  stats_.resp_count = s.u64();
}

}  // namespace mempool
