#pragma once
// CPU-visible memory layout of a MemPool cluster: the interleaved physical
// map plus the hybrid-addressing scrambler sitting in the cores' address
// decoders. This is the single place where a CPU byte address is translated
// into (physical address, tile, bank) routing fields.

#include <cstdint>

#include "core/cluster_config.hpp"
#include "mem/addr_map.hpp"
#include "mem/scrambler.hpp"
#include "sim/packet.hpp"

namespace mempool {

/// Testbench peripheral addresses (handled core-locally, never routed).
inline constexpr uint32_t kCtrlBase = 0xC000'0000u;
inline constexpr uint32_t kCtrlExit = kCtrlBase + 0x0;   ///< write: halt core
inline constexpr uint32_t kCtrlPutChar = kCtrlBase + 0x4;///< write: console

class MemoryLayout {
 public:
  explicit MemoryLayout(const ClusterConfig& cfg)
      : map_(cfg.num_tiles, cfg.banks_per_tile, cfg.bank_bytes),
        scrambler_(map_, cfg.seq_region_bytes, cfg.scrambling) {}

  const AddressMap& map() const { return map_; }
  const Scrambler& scrambler() const { return scrambler_; }

  bool is_spm(uint32_t cpu_addr) const { return map_.contains(cpu_addr); }
  bool is_ctrl(uint32_t cpu_addr) const {
    return cpu_addr >= kCtrlBase && cpu_addr < kCtrlBase + 0x100;
  }

  /// Physical SPM location of a CPU address (scrambler applied).
  BankLocation locate(uint32_t cpu_addr) const {
    return map_.locate(scrambler_.scramble(cpu_addr));
  }

  /// Fill a request packet's routing fields from a CPU address.
  void route(Packet& p, uint32_t cpu_addr) const {
    const uint32_t phys = scrambler_.scramble(cpu_addr);
    const BankLocation loc = map_.locate(phys);
    p.addr = phys;
    p.dst_tile = static_cast<uint16_t>(loc.tile);
    p.dst_bank = static_cast<uint16_t>(loc.bank);
    p.dst_row = loc.row;
  }

  /// First CPU address above the sequential window (start of the interleaved
  /// heap used for shared data).
  uint32_t interleaved_base() const {
    return scrambler_.enabled() ? scrambler_.seq_total_bytes() : 0;
  }

 private:
  AddressMap map_;
  Scrambler scrambler_;
};

}  // namespace mempool
