#include "core/cluster_config.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "noc/fabric.hpp"

namespace mempool {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kTop1: return "Top1";
    case Topology::kTop4: return "Top4";
    case Topology::kTopH: return "TopH";
    case Topology::kTopX: return "TopX";
  }
  return "?";
}

bool topology_from_name(const std::string& name, Topology* out) {
  for (Topology t : {Topology::kTop1, Topology::kTop4, Topology::kTopH,
                     Topology::kTopX}) {
    if (name == topology_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

uint64_t TopologySpec::param_uint(const std::string& key,
                                  uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    return it->second.as_uint();
  } catch (const CheckError&) {
    MEMPOOL_CHECK_MSG(false, "topology '" << name << "' param '" << key
                                          << "' must be a non-negative "
                                             "integer, got "
                                          << it->second.dump());
  }
  return fallback;  // unreachable
}

std::string ClusterConfig::display_name() const {
  std::string n = topology.name;
  if (scrambling) n += "S";
  return n;
}

void ClusterConfig::validate() const {
  MEMPOOL_CHECK(is_pow2(num_tiles));
  MEMPOOL_CHECK(is_pow2(cores_per_tile));
  MEMPOOL_CHECK(is_pow2(banks_per_tile));
  MEMPOOL_CHECK(is_pow2(bank_bytes) && bank_bytes >= 4);
  MEMPOOL_CHECK(is_pow2(seq_region_bytes));
  MEMPOOL_CHECK_MSG(seq_region_bytes >= banks_per_tile * 4,
                    "sequential region below one interleaving sweep");
  MEMPOOL_CHECK_MSG(seq_region_bytes <= banks_per_tile * bank_bytes,
                    "sequential region exceeds a tile's SPM");
  MEMPOOL_CHECK(core.num_outstanding >= 1);
  MEMPOOL_CHECK_MSG(num_groups >= 1, "num_groups must be >= 1");
  MEMPOOL_CHECK_MSG(num_tiles % num_groups == 0,
                    "num_groups (" << num_groups << ") does not divide "
                                   << "num_tiles (" << num_tiles << ")");

  // Everything topology-specific — port shape constraints, butterfly radix
  // rules, spec parameters — is the plugin's business.
  const FabricTopology& topo = FabricRegistry::get(topology.name);
  topo.check_params(topology);
  topo.validate(*this);
}

ClusterConfig ClusterConfig::paper(const TopologySpec& spec, bool scrambling) {
  return FabricRegistry::get(spec.name).paper_config(spec, scrambling);
}

ClusterConfig ClusterConfig::mini(const TopologySpec& spec, bool scrambling) {
  return FabricRegistry::get(spec.name).mini_config(spec, scrambling);
}

}  // namespace mempool
