#include "core/cluster_config.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"

namespace mempool {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kTop1: return "Top1";
    case Topology::kTop4: return "Top4";
    case Topology::kTopH: return "TopH";
    case Topology::kTopX: return "TopX";
  }
  return "?";
}

bool topology_from_name(const std::string& name, Topology* out) {
  for (Topology t : {Topology::kTop1, Topology::kTop4, Topology::kTopH,
                     Topology::kTopX}) {
    if (name == topology_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

uint64_t MemorySpec::param_uint(const std::string& key,
                                uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    return it->second.as_uint();
  } catch (const CheckError&) {
    MEMPOOL_CHECK_MSG(false, "memory system '" << name << "' param '" << key
                                               << "' must be a non-negative "
                                                  "integer, got "
                                               << it->second.dump());
  }
  return fallback;  // unreachable
}

uint64_t TopologySpec::param_uint(const std::string& key,
                                  uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    return it->second.as_uint();
  } catch (const CheckError&) {
    MEMPOOL_CHECK_MSG(false, "topology '" << name << "' param '" << key
                                          << "' must be a non-negative "
                                             "integer, got "
                                          << it->second.dump());
  }
  return fallback;  // unreachable
}

std::string ClusterConfig::display_name() const {
  std::string n = topology.name;
  if (scrambling) n += "S";
  return n;
}

namespace {

// The valid sequential-region sizes for a tile geometry: every power of two
// from one interleaving sweep (banks_per_tile words) up to the tile's whole
// SPM share. Listed in the validation errors so a bad config tells the user
// what *would* work instead of aborting unexplained deep in construction.
std::string valid_seq_region_values(uint32_t banks_per_tile,
                                    uint32_t bank_bytes) {
  std::string out;
  for (uint64_t v = uint64_t{banks_per_tile} * 4;
       v <= uint64_t{banks_per_tile} * bank_bytes; v *= 2) {
    if (!out.empty()) out += ", ";
    out += std::to_string(v);
  }
  return out;
}

void check_pow2_field(uint32_t value, const char* field) {
  MEMPOOL_CHECK_MSG(value >= 1 && is_pow2(value),
                    field << " (" << value
                          << ") must be a power of two (the interleaved "
                             "address map decomposes addresses into bit "
                             "fields)");
}

}  // namespace

void ClusterConfig::validate() const {
  check_pow2_field(num_tiles, "num_tiles");
  check_pow2_field(cores_per_tile, "cores_per_tile");
  check_pow2_field(banks_per_tile, "banks_per_tile");
  check_pow2_field(bank_bytes, "bank_bytes");
  MEMPOOL_CHECK_MSG(bank_bytes >= 4, "bank_bytes (" << bank_bytes
                                                    << ") must hold at least "
                                                       "one 4-byte word");
  // The hybrid addressing scheme swaps row bits with tile bits, so the
  // per-tile sequential region must be a power of two, cover at least one
  // full interleaving sweep of the tile's banks, and divide (i.e. fit) the
  // tile's SPM share. Reject anything else here, with the list of sizes that
  // would work, instead of an unexplained abort inside Scrambler.
  MEMPOOL_CHECK_MSG(
      is_pow2(seq_region_bytes),
      "seq_region_bytes (" << seq_region_bytes
                           << ") must be a power of two; valid values for "
                           << banks_per_tile << " banks x " << bank_bytes
                           << " B: "
                           << valid_seq_region_values(banks_per_tile,
                                                      bank_bytes));
  MEMPOOL_CHECK_MSG(
      seq_region_bytes >= banks_per_tile * 4,
      "seq_region_bytes (" << seq_region_bytes
                           << ") is below one interleaving sweep of the "
                              "tile's banks ("
                           << banks_per_tile * 4 << " B); valid values: "
                           << valid_seq_region_values(banks_per_tile,
                                                      bank_bytes));
  MEMPOOL_CHECK_MSG(
      seq_region_bytes <= banks_per_tile * bank_bytes,
      "seq_region_bytes (" << seq_region_bytes
                           << ") exceeds a tile's SPM share ("
                           << banks_per_tile * bank_bytes
                           << " B); valid values: "
                           << valid_seq_region_values(banks_per_tile,
                                                      bank_bytes));
  MEMPOOL_CHECK(core.num_outstanding >= 1);
  MEMPOOL_CHECK_MSG(num_groups >= 1, "num_groups must be >= 1");
  MEMPOOL_CHECK_MSG(num_tiles % num_groups == 0,
                    "num_groups (" << num_groups << ") does not divide "
                                   << "num_tiles (" << num_tiles << ")");

  // Everything topology-specific — port shape constraints, butterfly radix
  // rules, spec parameters — is the plugin's business.
  const FabricTopology& topo = FabricRegistry::get(topology.name);
  topo.check_params(topology);
  topo.validate(*this);

  // Likewise everything memory-hierarchy-specific (L2 geometry, AXI/DMA
  // parameters) belongs to the memory-system plugin.
  const MemorySystem& mem = MemoryRegistry::get(memory.name);
  mem.check_params(memory);
  mem.validate(*this);
}

ClusterConfig ClusterConfig::paper(const TopologySpec& spec, bool scrambling) {
  return FabricRegistry::get(spec.name).paper_config(spec, scrambling);
}

ClusterConfig ClusterConfig::mini(const TopologySpec& spec, bool scrambling) {
  return FabricRegistry::get(spec.name).mini_config(spec, scrambling);
}

}  // namespace mempool
