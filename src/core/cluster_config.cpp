#include "core/cluster_config.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kTop1: return "Top1";
    case Topology::kTop4: return "Top4";
    case Topology::kTopH: return "TopH";
    case Topology::kTopX: return "TopX";
  }
  return "?";
}

bool topology_from_name(const std::string& name, Topology* out) {
  for (Topology t : {Topology::kTop1, Topology::kTop4, Topology::kTopH,
                     Topology::kTopX}) {
    if (name == topology_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

std::string ClusterConfig::display_name() const {
  std::string n = topology_name(topology);
  if (scrambling) n += "S";
  return n;
}

void ClusterConfig::validate() const {
  MEMPOOL_CHECK(is_pow2(num_tiles));
  MEMPOOL_CHECK(is_pow2(cores_per_tile));
  MEMPOOL_CHECK(is_pow2(banks_per_tile));
  MEMPOOL_CHECK(is_pow2(bank_bytes) && bank_bytes >= 4);
  MEMPOOL_CHECK(is_pow2(seq_region_bytes));
  MEMPOOL_CHECK_MSG(seq_region_bytes >= banks_per_tile * 4,
                    "sequential region below one interleaving sweep");
  MEMPOOL_CHECK_MSG(seq_region_bytes <= banks_per_tile * bank_bytes,
                    "sequential region exceeds a tile's SPM");
  MEMPOOL_CHECK(core.num_outstanding >= 1);

  switch (topology) {
    case Topology::kTop1:
    case Topology::kTop4: {
      // Radix-4 butterfly over all tiles.
      const unsigned tb = log2_exact(num_tiles);
      MEMPOOL_CHECK_MSG(tb % 2 == 0 && num_tiles >= 4,
                        "Top1/Top4 need num_tiles = 4^k >= 4");
      break;
    }
    case Topology::kTopH: {
      MEMPOOL_CHECK_MSG(num_groups == 4, "TopH is defined for 4 groups");
      MEMPOOL_CHECK_MSG(num_tiles % num_groups == 0, "tiles not divisible");
      const uint32_t tpg = tiles_per_group();
      const unsigned gb = log2_exact(tpg);
      MEMPOOL_CHECK_MSG(tpg >= 4 && gb % 2 == 0,
                        "TopH needs tiles_per_group = 4^k >= 4");
      break;
    }
    case Topology::kTopX:
      break;
  }
}

ClusterConfig ClusterConfig::paper(Topology t, bool scrambling) {
  ClusterConfig cfg;
  cfg.topology = t;
  cfg.scrambling = scrambling;
  cfg.validate();
  return cfg;
}

ClusterConfig ClusterConfig::mini(Topology t, bool scrambling) {
  ClusterConfig cfg;
  cfg.topology = t;
  cfg.scrambling = scrambling;
  cfg.num_tiles = 16;
  cfg.cores_per_tile = 4;
  cfg.banks_per_tile = 16;
  cfg.bank_bytes = 1024;
  cfg.seq_region_bytes = 4096;
  cfg.validate();
  return cfg;
}

}  // namespace mempool
