#pragma once
// The MemPool cluster: tiles plus a global interconnect built by a
// fabric-topology plugin (noc/fabric.hpp).
//
// The Cluster itself is topology-agnostic. It owns the tiles, the per-core
// issue ports, and generic containers for the networks a plugin constructs;
// every topology-specific decision — tile port shape, buffer modes, routing
// functions, which networks exist and how they wire to the tiles, how core
// ports attach — is delegated to the FabricTopology registered under
// ClusterConfig::topology.name. Registering a new plugin (see README,
// "adding a topology"; noc/toph2.cpp is the worked example) therefore adds a
// fabric without touching this file.
//
// Built-in plugins (noc/topologies_builtin.cpp, noc/toph2.cpp):
//  Top1  — per tile one master port (4×1 concentrator), a single 64×64
//          radix-4 butterfly each way, pipeline register midway (zero-load
//          5 cycles).
//  Top4  — four parallel butterflies; core i of every tile owns port i
//          (point-to-point, no concentrator).
//  TopH  — four local groups; intra-group 16×16 fully-connected crossbar
//          (zero-load 3 cycles), and one 16×16 radix-4 butterfly per ordered
//          pair of groups (zero-load 5 cycles).
//  TopX  — ideal, physically infeasible baseline: conflict-free single-cycle
//          access to every bank (output-queued; banks still serialize).
//  TopH2 — two-level hierarchy at 1024 cores: 16 groups of 16 tiles inside
//          4 super-groups; crossbar + two butterfly tiers (1/3/5/7 cycles).
//
// Evaluation order per cycle (see DESIGN.md §3): bank-response crossbars →
// response networks (group crossbars, then butterflies) → remote-response
// crossbars / ideal bridges → I$ → clients → memory-hierarchy engines
// (tcdm+l2's DMA frontends/backends; nothing for tcdm) → master-port
// crossbars → request networks (group crossbars, then butterflies) →
// merged request crossbars → banks → commit. Plugins insert networks into
// these fixed phases via the FabricBuilder; the memory system registers its
// engines via MemoryInstance::add_components.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "core/client.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "core/tile.hpp"
#include "mem/imem.hpp"
#include "mem/memsys.hpp"
#include "noc/butterfly.hpp"
#include "noc/xbar.hpp"
#include "sim/engine.hpp"

namespace mempool {

class Cluster;
class DmaPortal;
class FabricBuilder;
class FabricTopology;

/// Per-core request issue port (address decoder at the core's output).
class CorePort final : public RequestPort {
 public:
  CorePort(Cluster* cluster, uint32_t core);
  bool try_issue(const Packet& p) override;

  /// DRC: the sinks try_issue pushes into, declared on the client's behalf.
  void describe(GraphVisitor& v) const override;

 private:
  friend class Cluster;
  friend class FabricBuilder;
  Cluster* cluster_;
  uint32_t tile_;
  PacketSink* local_ = nullptr;   // merged request crossbar, own tile
  PacketSink* remote_ = nullptr;  // master-port crossbar or dedicated port
  bool ideal_ = false;            // TopX: direct bank access
};

/// TopX response path: one registered buffer per bank, drained completely
/// every cycle (the ideal fabric has unlimited response bandwidth; the
/// register models the banks' one-cycle output latency).
class IdealRespBridge final : public Component {
 public:
  IdealRespBridge(std::string name, uint32_t num_banks,
                  const std::vector<Client*>* clients,
                  Arena* arena = nullptr);
  PacketSink* bank_input(uint32_t b) { return &sinks_[b]; }
  void register_clocked(Engine& engine, uint32_t shard = 0);
  void evaluate(uint64_t cycle) override;
  bool idle() const override;

  /// DRC self-description: reads the per-bank buffers, delivers into every
  /// client (terminal edges).
  void describe(GraphVisitor& v) const override;

  /// Checkpoint: the per-bank registered response buffers.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

 private:
  PinnedVector<PacketBuffer> bufs_;  // pinned: ElasticBuffer is non-movable
  std::vector<BufferSink<PacketBuffer>> sinks_;
  const std::vector<Client*>* clients_;
};

class Cluster {
 public:
  Cluster(const ClusterConfig& cfg, const InstrMem* imem);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Attach exactly num_cores() clients (cores or traffic generators), in
  /// global core order. Must be called before build().
  void attach_clients(const std::vector<Client*>& clients);

  /// Add every component to the engine in evaluation order and register all
  /// clocked state. Call once.
  void build(Engine& engine);

  RequestPort* port(uint32_t core) { return ports_[core].get(); }
  const ClusterConfig& config() const { return cfg_; }
  const MemoryLayout& layout() const { return layout_; }

  /// The fabric-topology plugin this cluster was built with.
  const FabricTopology& fabric() const { return *fabric_; }

  /// The memory-system instance (mem/memsys.hpp) this cluster was built
  /// with: layout, banks, and any L2/DMA machinery behind ClusterConfig's
  /// MemorySpec.
  const MemoryInstance& memsys() const { return *memsys_; }

  /// DMA control interface of @p tile's group, or nullptr when the memory
  /// system has no DMA engine (tcdm). Cores reach it through the DMA CSRs.
  DmaPortal* dma_portal(uint32_t tile);

  /// The memory hierarchy's aggregate counters (all zero for tcdm).
  MemoryStats memory_stats() const { return memsys_->stats(); }

  Tile& tile(uint32_t t) { return *tiles_[t]; }
  const Tile& tile(uint32_t t) const { return *tiles_[t]; }
  uint32_t num_tiles() const { return static_cast<uint32_t>(tiles_.size()); }

  /// Shards the fabric plugin partitions this cluster into (1 for the flat
  /// fabrics) and the shard of each tile — what build() hands the engine and
  /// what callers size per-shard structures (monitors, executors) with.
  uint32_t num_shards() const;
  uint32_t tile_shard(uint32_t tile) const;

  // --- backdoor access (program loading / result checking) -----------------
  uint32_t read_word(uint32_t cpu_addr) const;
  void write_word(uint32_t cpu_addr, uint32_t value);

  // --- aggregate statistics --------------------------------------------------
  struct FabricStats {
    uint64_t tile_req_traversals = 0;
    uint64_t tile_resp_traversals = 0;
    uint64_t dir_traversals = 0;
    uint64_t remote_resp_traversals = 0;
    uint64_t group_local_traversals = 0;  ///< Group crossbars, both ways.
    uint64_t butterfly_traversals = 0;    ///< Global butterflies, both ways.
    uint64_t bank_accesses = 0;
    uint64_t bank_stall_cycles = 0;
    uint64_t icache_hits = 0;
    uint64_t icache_misses = 0;   ///< Miss *queries* (retries included).
    uint64_t icache_refills = 0;  ///< Actual line fills.
  };
  FabricStats fabric_stats() const;

  /// True when no packet is in flight anywhere in the fabric.
  bool fabric_idle() const;

  // Raw component access for the energy model and tests. The pointers are
  // owned by the shard arenas (see arenas_).
  const std::vector<ButterflyNet*>& req_butterflies() const {
    return req_bflys_;
  }
  const std::vector<ButterflyNet*>& resp_butterflies() const {
    return resp_bflys_;
  }
  const std::vector<XbarSwitch*>& group_req_xbars() const {
    return group_req_lxbars_;
  }
  const std::vector<XbarSwitch*>& group_resp_xbars() const {
    return group_resp_lxbars_;
  }

  /// Shard @p shard's component arena: every component evaluated in that
  /// shard (tiles' crossbars, banks, networks, bridges, memory engines) and
  /// all their ElasticBuffer ring storage is carved out of this arena in
  /// fabric-evaluation order, so one shard's cycle walks one contiguous
  /// region of memory.
  const Arena& shard_arena(uint32_t shard) const { return *arenas_[shard]; }

 private:
  friend class CorePort;
  friend class FabricBuilder;
  friend class MemoryBuilder;

  /// validate() before any member that derives from the config is built, so
  /// a bad configuration fails with the validation error, not an
  /// unexplained CHECK deep inside layout/bank construction.
  static ClusterConfig validated(ClusterConfig cfg);

  /// "0->1 x16, 1->0 x16" — the shard boundaries declared so far, for
  /// FabricBuilder::shard_boundary diagnostics.
  std::string boundary_registry() const;

  ClusterConfig cfg_;
  /// One component arena per fabric shard. Declared before every container
  /// of arena-owned pointers so the arenas — and the registered destructors
  /// they run — outlive all raw references below (members destroy in
  /// reverse declaration order).
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::unique_ptr<MemoryInstance> memsys_;  // before layout_: supplies it
  MemoryLayout layout_;
  const InstrMem* imem_;
  const FabricTopology* fabric_;  // registry-owned, never null after ctor
  // All raw component pointers below are owned by the shard arenas above.
  std::vector<Tile*> tiles_;
  std::vector<ButterflyNet*> req_bflys_;
  std::vector<ButterflyNet*> resp_bflys_;
  std::vector<XbarSwitch*> group_req_lxbars_;
  std::vector<XbarSwitch*> group_resp_lxbars_;
  // Shard tags parallel to the four network containers (FabricBuilder::add_*).
  std::vector<uint32_t> req_bfly_shards_;
  std::vector<uint32_t> resp_bfly_shards_;
  std::vector<uint32_t> group_req_shards_;
  std::vector<uint32_t> group_resp_shards_;
  std::vector<IdealRespBridge*> bridges_;
  std::vector<Client*> clients_;
  std::vector<std::unique_ptr<CorePort>> ports_;
  /// (producer shard, consumer shard) -> boundaries declared through
  /// FabricBuilder::shard_boundary, for wiring diagnostics.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> boundary_counts_;
  bool built_ = false;
};

}  // namespace mempool
