#pragma once
// Configuration of a MemPool cluster. The paper's silicon configuration is
// the default: 64 tiles × 4 cores × 16 banks × 1 KiB = 256 cores and 1 MiB of
// shared L1 SPM, with a 2 KiB 4-way shared I$ per tile.

#include <cstdint>
#include <string>

#include "mem/icache.hpp"

namespace mempool {

/// The three candidate interconnect topologies of Section III-C plus the
/// ideal, non-implementable full-crossbar baseline of Section V-C.
enum class Topology : uint8_t {
  kTop1,  ///< Single 64×64 radix-4 butterfly; one master port per tile.
  kTop4,  ///< Four parallel butterflies; one dedicated port per core.
  kTopH,  ///< Hierarchical: per-group 16×16 crossbar + inter-group butterflies.
  kTopX,  ///< Ideal single-cycle conflict-free crossbar (baseline only).
};

const char* topology_name(Topology t);

/// Inverse of topology_name ("Top1"/"Top4"/"TopH"/"TopX"); returns false and
/// leaves @p out untouched on an unknown name.
bool topology_from_name(const std::string& name, Topology* out);

/// Snitch core timing parameters (Section III-B).
struct CoreConfig {
  uint32_t num_outstanding = 8;  ///< ROB entries = max outstanding loads.
  uint32_t mul_latency = 3;      ///< Pipelined; result usable after N cycles.
  uint32_t div_latency = 21;     ///< Blocking iterative divider.
  uint32_t branch_taken_penalty = 2;  ///< Cycles consumed by a taken branch.
  uint32_t stack_bytes = 1024;   ///< Per-core stack carved from the
                                 ///< sequential region by the runtime.
  /// Snitch's LSU tags outstanding loads and writes the register file on
  /// response arrival (the tile ROB already restored per-tag ordering), so a
  /// slow response does not head-of-line-block younger ones. Set to false to
  /// model a strictly in-order single-port writeback instead.
  bool writeback_on_arrival = true;
};

struct ClusterConfig {
  Topology topology = Topology::kTopH;
  uint32_t num_tiles = 64;
  uint32_t cores_per_tile = 4;
  uint32_t banks_per_tile = 16;
  uint32_t bank_bytes = 1024;       ///< 16 KiB SPM per tile (paper).
  uint32_t seq_region_bytes = 4096; ///< 2^S bytes of sequential region/tile.
  bool scrambling = true;           ///< Hybrid addressing scheme on/off.
  uint32_t num_groups = 4;          ///< TopH local groups (paper: 4).
  CoreConfig core;
  ICacheConfig icache;

  // --- derived quantities ---------------------------------------------------
  uint32_t num_cores() const { return num_tiles * cores_per_tile; }
  uint32_t num_banks() const { return num_tiles * banks_per_tile; }
  uint32_t spm_bytes() const { return num_banks() * bank_bytes; }
  uint32_t tiles_per_group() const { return num_tiles / num_groups; }
  uint32_t group_of_tile(uint32_t tile) const { return tile / tiles_per_group(); }
  uint32_t tile_of_core(uint32_t core) const { return core / cores_per_tile; }

  /// Display name including the scrambling suffix used in Figure 7
  /// ("TopHS" = TopH with scrambling logic).
  std::string display_name() const;

  /// Throws CheckError when structurally invalid (non-power-of-two sizes,
  /// butterfly radix mismatch, ...).
  void validate() const;

  // --- canonical configurations --------------------------------------------
  /// The full 256-core paper configuration with the given topology.
  static ClusterConfig paper(Topology t, bool scrambling);
  /// A 16-tile / 64-core miniature for fast unit tests (all topologies).
  static ClusterConfig mini(Topology t, bool scrambling = true);
};

}  // namespace mempool
