#pragma once
// Configuration of a MemPool cluster. The paper's silicon configuration is
// the default: 64 tiles × 4 cores × 16 banks × 1 KiB = 256 cores and 1 MiB of
// shared L1 SPM, with a 2 KiB 4-way shared I$ per tile.
//
// Which interconnect connects the tiles is an *open* axis: a cluster names a
// fabric-topology plugin by TopologySpec and every topology-specific decision
// (tile port shape, network construction, zero-load model, physical wiring,
// energy rows, validation) is dispatched through the FabricTopology interface
// (noc/fabric.hpp). The legacy `Topology` enum survives only as a thin compat
// alias that converts to the spec of the matching built-in plugin.

#include <cstdint>
#include <map>
#include <string>

#include "common/json.hpp"
#include "mem/icache.hpp"

namespace mempool {

/// Legacy closed enumeration of the paper's topologies (Sections III-C/V-C).
/// Kept as a compatibility alias: a Topology converts implicitly to the
/// TopologySpec of the corresponding built-in plugin, so pre-registry call
/// sites (`ClusterConfig::paper(Topology::kTopH, ...)`) keep compiling. New
/// code — and every non-paper topology, e.g. "TopH2" — uses TopologySpec.
enum class Topology : uint8_t {
  kTop1,  ///< Single 64×64 radix-4 butterfly; one master port per tile.
  kTop4,  ///< Four parallel butterflies; one dedicated port per core.
  kTopH,  ///< Hierarchical: per-group 16×16 crossbar + inter-group butterflies.
  kTopX,  ///< Ideal single-cycle conflict-free crossbar (baseline only).
};

const char* topology_name(Topology t);

/// Inverse of topology_name ("Top1"/"Top4"/"TopH"/"TopX"); returns false and
/// leaves @p out untouched on an unknown name. Only resolves the four legacy
/// enumerators — registry lookups (FabricRegistry::find) cover every plugin.
bool topology_from_name(const std::string& name, Topology* out);

/// Names a fabric-topology plugin and carries its free-form parameters
/// (serialized verbatim into the mempool.sweep.v2 schema). Parameter keys
/// are validated against FabricTopology::param_keys() in
/// ClusterConfig::validate(): unknown or ill-typed parameters throw there,
/// not deep inside cluster construction.
struct TopologySpec {
  std::string name = "TopH";
  std::map<std::string, Json> params;

  TopologySpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): legacy-enum compat alias.
  TopologySpec(Topology t) : name(topology_name(t)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TopologySpec(const char* n) : name(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TopologySpec(std::string n) : name(std::move(n)) {}
  TopologySpec(std::string n, std::map<std::string, Json> p)
      : name(std::move(n)), params(std::move(p)) {}

  /// Typed parameter accessor; returns @p fallback when absent and throws
  /// CheckError when present but not a non-negative integer.
  uint64_t param_uint(const std::string& key, uint64_t fallback) const;

  bool operator==(const TopologySpec&) const = default;
};

inline const std::string& topology_name(const TopologySpec& s) {
  return s.name;
}

/// Names a memory-system plugin (mem/memsys.hpp) and carries its free-form
/// parameters (serialized verbatim into the mempool.sweep.v3 schema), the
/// exact mirror of TopologySpec for the memory hierarchy: parameter keys are
/// validated against MemorySystem::param_keys() in ClusterConfig::validate(),
/// so unknown or ill-typed parameters throw there, not deep inside
/// construction. The default, "tcdm", is the seed-era flat always-hit L1.
struct MemorySpec {
  std::string name = "tcdm";
  std::map<std::string, Json> params;

  MemorySpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  MemorySpec(const char* n) : name(n) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  MemorySpec(std::string n) : name(std::move(n)) {}
  MemorySpec(std::string n, std::map<std::string, Json> p)
      : name(std::move(n)), params(std::move(p)) {}

  /// Typed parameter accessor; returns @p fallback when absent and throws
  /// CheckError when present but not a non-negative integer.
  uint64_t param_uint(const std::string& key, uint64_t fallback) const;

  bool operator==(const MemorySpec&) const = default;
};

/// Snitch core timing parameters (Section III-B).
struct CoreConfig {
  uint32_t num_outstanding = 8;  ///< ROB entries = max outstanding loads.
  uint32_t mul_latency = 3;      ///< Pipelined; result usable after N cycles.
  uint32_t div_latency = 21;     ///< Blocking iterative divider.
  uint32_t branch_taken_penalty = 2;  ///< Cycles consumed by a taken branch.
  uint32_t stack_bytes = 1024;   ///< Per-core stack carved from the
                                 ///< sequential region by the runtime.
  /// Snitch's LSU tags outstanding loads and writes the register file on
  /// response arrival (the tile ROB already restored per-tag ordering), so a
  /// slow response does not head-of-line-block younger ones. Set to false to
  /// model a strictly in-order single-port writeback instead.
  bool writeback_on_arrival = true;
};

struct ClusterConfig {
  TopologySpec topology;            ///< Fabric plugin (default: TopH).
  MemorySpec memory;                ///< Memory-system plugin (default: tcdm).
  uint32_t num_tiles = 64;
  uint32_t cores_per_tile = 4;
  uint32_t banks_per_tile = 16;
  uint32_t bank_bytes = 1024;       ///< 16 KiB SPM per tile (paper).
  uint32_t seq_region_bytes = 4096; ///< 2^S bytes of sequential region/tile.
  bool scrambling = true;           ///< Hybrid addressing scheme on/off.
  uint32_t num_groups = 4;          ///< Local groups (TopH: 4, TopH2: 16).
  CoreConfig core;
  ICacheConfig icache;

  // --- derived quantities ---------------------------------------------------
  uint32_t num_cores() const { return num_tiles * cores_per_tile; }
  uint32_t num_banks() const { return num_tiles * banks_per_tile; }
  uint32_t spm_bytes() const { return num_banks() * bank_bytes; }
  uint32_t tiles_per_group() const { return num_tiles / num_groups; }
  uint32_t group_of_tile(uint32_t tile) const { return tile / tiles_per_group(); }
  uint32_t tile_of_core(uint32_t core_id) const {
    return core_id / cores_per_tile;
  }

  /// Display name including the scrambling suffix used in Figure 7
  /// ("TopHS" = TopH with scrambling logic).
  std::string display_name() const;

  /// Throws CheckError when structurally invalid: non-power-of-two sizes,
  /// zero / non-dividing num_groups, an unregistered topology name (the
  /// error lists the available plugins), unknown or ill-typed spec params,
  /// or a violated plugin-specific constraint (butterfly radix mismatch...).
  void validate() const;

  // --- canonical configurations --------------------------------------------
  /// The registered plugin's full-scale configuration with the given
  /// topology: the 256-core paper cluster for the four paper topologies, the
  /// 1024-core two-level cluster for TopH2.
  static ClusterConfig paper(const TopologySpec& spec, bool scrambling);
  /// The plugin's smallest valid configuration for fast unit tests
  /// (16 tiles / 64 cores for the paper topologies).
  static ClusterConfig mini(const TopologySpec& spec, bool scrambling = true);
};

}  // namespace mempool
