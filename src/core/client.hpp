#pragma once
// A Client occupies one core slot of a tile: either a Snitch core model
// (execution-driven runs) or a synthetic traffic generator (Figures 5/6).
// The cluster hands each client a RequestPort for issuing requests and
// delivers response packets via deliver().

#include <cstdint>
#include <string>

#include "sim/component.hpp"
#include "sim/packet.hpp"

namespace mempool {

/// Per-core request issue interface, implemented by the cluster. A client may
/// issue at most one request per cycle; try_issue returns false when the
/// fabric (or the ideal bank queue) cannot accept the packet this cycle.
class RequestPort {
 public:
  virtual ~RequestPort() = default;
  virtual bool try_issue(const Packet& req) = 0;

  /// DRC hook: declare, on the issuing client's behalf, the sinks try_issue
  /// pushes into (the port is cluster plumbing, not a component of its own —
  /// its edges belong to the client). Conservative default: opaque.
  virtual void describe(GraphVisitor& /*v*/) const {}
};

class Client : public Component {
 public:
  Client(std::string name, uint16_t global_id, uint16_t tile)
      : Component(std::move(name)), id_(global_id), tile_(tile) {}

  /// Response arrival (always accepted; ordering restored by the client's
  /// own ROB if it has one).
  virtual void deliver(const Packet& resp) = 0;

  /// Called once by the cluster after construction.
  void bind_port(RequestPort* port) { port_ = port; }

  /// DRC self-description: a client's outgoing edges are whatever its
  /// request port pushes into; subclasses extend this with their own edges
  /// (Client::describe(v) first, then their additions).
  void describe(GraphVisitor& v) const override {
    if (port_ != nullptr) port_->describe(v);
  }

  uint16_t id() const { return id_; }
  uint16_t tile() const { return tile_; }

 protected:
  RequestPort* port_ = nullptr;
  uint16_t id_;
  uint16_t tile_;
};

}  // namespace mempool
