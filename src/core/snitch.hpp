#pragma once
// Cycle-level timing model of the Snitch core (Zaruba et al.): a single-issue,
// single-stage RV32IMA core with a configurable number of outstanding loads
// (Section III-B: "Snitch supports a configurable number of outstanding load
// instructions, which is useful to hide the SPM access latency").
//
// Scoreboarding: every in-flight load/AMO marks its destination register
// pending; an instruction that reads or writes a pending register stalls.
// Responses return out of order from banks at different distances and are
// retired in order through the per-core ROB, one per cycle.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "isa/encoding.hpp"
#include "mem/icache.hpp"
#include "mem/rob.hpp"

namespace mempool {

class DmaPortal;
struct DmaDescriptor;

class SnitchCore final : public Client {
 public:
  /// @param program   pre-decoded instruction image (fetch timing still goes
  ///                  through the shared per-tile I$).
  /// @param program_base virtual address of program[0].
  SnitchCore(std::string name, uint16_t id, uint16_t tile,
             const ClusterConfig& cfg, const MemoryLayout* layout,
             ICache* icache, const std::vector<isa::Instr>* program,
             uint32_t program_base, uint32_t boot_pc);

  /// Attach the group's DMA control interface (tcdm+l2 memory system);
  /// without one, any DMA CSR access aborts with a clear error. Called by
  /// System::load_program.
  void set_dma_portal(DmaPortal* dma) { dma_ = dma; }

  void deliver(const Packet& resp) override;
  void evaluate(uint64_t cycle) override;

  /// Activity contract: a running core issues/stalls every cycle (its work is
  /// self-generated), so it only leaves the active set once halted. Late
  /// responses to a halted core are delivered by the response fabric without
  /// re-evaluating it, exactly as under the dense engine.
  bool idle() const override { return halted_; }

  /// DRC self-description: request-port edges (via Client), self-generated
  /// work, the fetch-path wake into the tile I$, and the DMA portal's
  /// submit() as a terminal edge when one is attached.
  void describe(GraphVisitor& v) const override;

  bool halted() const { return halted_; }
  uint32_t exit_code() const { return exit_code_; }
  const std::string& console() const { return console_; }

  uint32_t reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, uint32_t v) {
    if (i != 0) regs_[i] = v;
  }
  uint32_t pc() const { return pc_; }

  /// Executed-instruction and stall statistics (power model + reports).
  struct Stats {
    uint64_t instret = 0;
    uint64_t cycles = 0;          ///< Cycles evaluated while not halted.
    uint64_t stall_fetch = 0;     ///< I$ miss.
    uint64_t stall_raw = 0;       ///< Operand not ready (scoreboard).
    uint64_t stall_rob = 0;       ///< ROB full.
    uint64_t stall_port = 0;      ///< Request port backpressure.
    uint64_t stall_ctrl = 0;      ///< Branch penalty / blocking divide.
    uint64_t alu = 0;             ///< Simple integer ops (add class).
    uint64_t mul = 0;
    uint64_t div = 0;
    uint64_t branches = 0;
    uint64_t loads_local = 0;     ///< Loads targeting the own tile.
    uint64_t loads_remote = 0;
    uint64_t stores_local = 0;
    uint64_t stores_remote = 0;
    uint64_t amos = 0;
    uint64_t dma_submits = 0;     ///< DMA transfers launched (kCsrDmaStart).
    uint64_t resp_latency_sum = 0;  ///< Sum of round-trip latencies (cycles).
    uint64_t resp_count = 0;
    double avg_load_latency() const {
      return resp_count ? static_cast<double>(resp_latency_sum) /
                              static_cast<double>(resp_count)
                        : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

  /// Checkpoint: architectural state (regfile, pc, CSRs, console, DMA config
  /// registers) plus microarchitectural state (ROB, scoreboard, instruction
  /// register, stall bookkeeping) and statistics.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

 private:
  bool reg_ready(uint8_t r, uint64_t cycle) const {
    return !mem_pending_[r] && alu_ready_[r] <= cycle;
  }
  uint32_t csr_read(uint16_t csr, uint64_t cycle) const;
  void csr_write(uint16_t csr, uint32_t value);
  DmaPortal& dma_or_die() const;
  void writeback(const RobEntry& e);
  void halt(uint32_t code) {
    halted_ = true;
    exit_code_ = code;
  }

  const ClusterConfig* cfg_;
  const MemoryLayout* layout_;
  ICache* icache_;
  const std::vector<isa::Instr>* program_;
  uint32_t program_base_;

  std::array<uint32_t, 32> regs_{};
  uint32_t pc_;
  bool halted_ = false;
  uint32_t exit_code_ = 0;
  std::string console_;

  ReorderBuffer rob_;
  std::array<bool, 32> mem_pending_{};
  std::array<uint64_t, 32> alu_ready_{};  ///< Cycle the value becomes usable.
  uint64_t next_issue_cycle_ = 0;
  // Instruction register: while stalled on the same pc the core does not
  // re-access the I$ (matters for the energy model's fetch counts).
  bool ir_valid_ = false;
  uint32_t ir_pc_ = 0;
  uint64_t last_cycle_ = 0;  ///< For response-latency accounting.

  uint32_t mscratch_ = 0;
  // Staged DMA descriptor (the DMA CSRs; launched by kCsrDmaStart). Rows and
  // strides are sticky across launches, like the hardware's config registers.
  DmaPortal* dma_ = nullptr;
  uint32_t dma_src_ = 0;
  uint32_t dma_dst_ = 0;
  uint32_t dma_rows_ = 1;
  uint32_t dma_src_stride_ = 0;
  uint32_t dma_dst_stride_ = 0;
  Stats stats_;
};

}  // namespace mempool
