#include "core/system.hpp"

#include "common/check.hpp"
#include "isa/decoder.hpp"
#include "runner/shard_gang.hpp"

namespace mempool {

System::System(const ClusterConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  cluster_ = std::make_unique<Cluster>(cfg_, &imem_);
}

System::~System() = default;

void System::configure_engine(EngineMode mode, unsigned sim_threads) {
  // One-shot: re-configuring would have to tear down a live gang/pool pair
  // in the right order and un-shard the engine — no caller needs that, so
  // fail loudly instead of supporting it subtly wrong.
  MEMPOOL_CHECK_MSG(!engine_configured_, "configure_engine called twice");
  engine_configured_ = true;
  switch (mode) {
    case EngineMode::kActive:
      engine_.set_dense(false);
      break;
    case EngineMode::kDense:
      engine_.set_dense(true);
      break;
    case EngineMode::kSharded:
      crew_ = std::make_unique<runner::ShardCrew>(sim_threads,
                                                  cluster_->num_shards());
      engine_.set_sharded(cluster_->num_shards(), crew_->executor());
      break;
  }
}

void System::load_program(const std::vector<uint32_t>& words, uint32_t base,
                          uint32_t boot_pc) {
  MEMPOOL_CHECK_MSG(!loaded_, "load_program called twice");
  MEMPOOL_CHECK(!words.empty());
  loaded_ = true;
  program_base_ = base;
  if (boot_pc == 0) boot_pc = base;
  imem_.load(base, words);
  decoded_.reserve(words.size());
  for (uint32_t w : words) decoded_.push_back(isa::decode(w));

  cores_.reserve(cfg_.num_cores());
  std::vector<Client*> clients;
  clients.reserve(cfg_.num_cores());
  for (uint32_t c = 0; c < cfg_.num_cores(); ++c) {
    const uint32_t t = c / cfg_.cores_per_tile;
    cores_.push_back(std::make_unique<SnitchCore>(
        "core" + std::to_string(c), static_cast<uint16_t>(c),
        static_cast<uint16_t>(t), cfg_, &cluster_->layout(),
        &cluster_->tile(t).icache(), &decoded_, program_base_, boot_pc));
    cores_.back()->set_dma_portal(cluster_->dma_portal(t));
    clients.push_back(cores_.back().get());
  }
  cluster_->attach_clients(clients);
  cluster_->build(engine_);
}

void System::write_word(uint32_t cpu_addr, uint32_t value) {
  cluster_->write_word(cpu_addr, value);
}

uint32_t System::read_word(uint32_t cpu_addr) const {
  return cluster_->read_word(cpu_addr);
}

void System::write_words(uint32_t cpu_addr,
                         const std::vector<uint32_t>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    write_word(cpu_addr + static_cast<uint32_t>(4 * i), values[i]);
  }
}

std::vector<uint32_t> System::read_words(uint32_t cpu_addr,
                                         std::size_t count) const {
  std::vector<uint32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(read_word(cpu_addr + static_cast<uint32_t>(4 * i)));
  }
  return out;
}

System::RunResult System::run(uint64_t max_cycles) {
  MEMPOOL_CHECK_MSG(loaded_, "no program loaded");
  RunResult r;
  for (uint64_t i = 0; i < max_cycles; ++i) {
    engine_.step();
    ++r.cycles;
    bool all = true;
    for (const auto& c : cores_) {
      if (!c->halted()) {
        all = false;
        break;
      }
    }
    if (all) {
      r.all_halted = true;
      break;
    }
  }
  if (r.all_halted) {
    // Stores are posted: a core can halt while its last results are still in
    // flight. Drain the fabric so backdoor reads observe the final state.
    for (int i = 0; i < 100000 && !cluster_->fabric_idle(); ++i) {
      engine_.step();
      ++r.cycles;
    }
    MEMPOOL_CHECK_MSG(cluster_->fabric_idle(), "fabric failed to drain");
  }
  return r;
}

std::string System::console() const {
  std::string out;
  for (const auto& c : cores_) out += c->console();
  return out;
}

SnitchCore::Stats System::aggregate_core_stats() const {
  SnitchCore::Stats s;
  for (const auto& c : cores_) {
    const auto& cs = c->stats();
    s.instret += cs.instret;
    s.cycles += cs.cycles;
    s.stall_fetch += cs.stall_fetch;
    s.stall_raw += cs.stall_raw;
    s.stall_rob += cs.stall_rob;
    s.stall_port += cs.stall_port;
    s.stall_ctrl += cs.stall_ctrl;
    s.alu += cs.alu;
    s.mul += cs.mul;
    s.div += cs.div;
    s.branches += cs.branches;
    s.loads_local += cs.loads_local;
    s.loads_remote += cs.loads_remote;
    s.stores_local += cs.stores_local;
    s.stores_remote += cs.stores_remote;
    s.amos += cs.amos;
    s.dma_submits += cs.dma_submits;
    s.resp_latency_sum += cs.resp_latency_sum;
    s.resp_count += cs.resp_count;
  }
  return s;
}

}  // namespace mempool
