#pragma once
// One MemPool tile (Section III-B, Figure 2): four Snitch core slots, sixteen
// SPM banks with single-cycle core access, a shared 4-way I$, the merged
// request crossbar (local cores + K remote slave ports → banks), the
// bank-response crossbar (banks → local cores + K remote response ports), the
// remote-response interconnect (K response slave ports → cores), and — for
// Top1/TopH — the crossbar that routes core requests to the K master ports.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/client.hpp"
#include "core/cluster_config.hpp"
#include "mem/bank.hpp"
#include "mem/icache.hpp"
#include "mem/imem.hpp"
#include "noc/xbar.hpp"
#include "sim/engine.hpp"

namespace mempool {

/// Always-ready terminal sink delivering responses into a client. Delivery
/// also wakes the client so a sleeping component that acts on responses in
/// its evaluate() (wake-on-response) is re-evaluated next cycle; for the
/// built-in clients this is a harmless no-op wake (cores only sleep once
/// halted, generators only once drained).
class ClientSink final : public PacketSink {
 public:
  explicit ClientSink(Client* c) : c_(c) {}
  bool can_accept() const override { return true; }
  void push(const Packet& p) override {
    c_->deliver(p);
    c_->wake();
  }
  /// DRC: terminal delivery into the client (same-cycle direct call).
  const Wakeable* drc_terminal() const override { return c_; }

 private:
  Client* c_;
};

class Tile {
 public:
  /// @param arena         shard arena the tile's components (I$, crossbars
  ///                      and their buffer storage) are carved out of, in
  ///                      evaluation order; the arena owns them and outlives
  ///                      the tile.
  /// @param banks         the tile's L1 banks, constructed by the memory-
  ///                      system plugin (mem/memsys.hpp) in the same arena,
  ///                      in bank order.
  /// @param with_fabric   false for the ideal TopX baseline (banks + I$ only;
  ///                      the cluster wires cores straight to banks).
  /// @param num_master_ports outputs of the per-tile master-port crossbar
  ///                      (Top1: 1, TopH: 4, Top4/TopX: 0 = none).
  /// @param num_slave_ports  remote request/response slave ports (K).
  /// @param slave_req_modes / slave_resp_modes buffer mode per slave port
  ///                      (registered = extra pipeline boundary).
  /// @param dir_route     routes a core's remote request to a master port.
  /// @param bank_resp_route routes a bank response to a local core
  ///                      [0, cores) or remote response port [cores, cores+K).
  Tile(uint32_t index, const ClusterConfig& cfg, const InstrMem* imem,
       Arena& arena, std::vector<SpmBank*> banks, bool with_fabric,
       uint32_t num_master_ports, uint32_t num_slave_ports,
       std::vector<BufferMode> slave_req_modes,
       std::vector<BufferMode> slave_resp_modes, RouteFn dir_route,
       RouteFn bank_resp_route);

  // --- connection points (request path) -------------------------------------
  PacketSink* core_local_req(uint32_t core_in_tile);
  PacketSink* slave_req(uint32_t k);
  PacketSink* dir_input(uint32_t core_in_tile);
  void connect_dir_output(uint32_t k, PacketSink* sink);

  // --- connection points (response path) ------------------------------------
  PacketSink* resp_slave(uint32_t k);
  void connect_resp_remote_output(uint32_t k, PacketSink* sink);

  /// Attach the tile's clients; creates the always-ready delivery sinks for
  /// the response crossbars.
  void connect_clients(const std::vector<Client*>& clients);

  // --- engine hookup, grouped by evaluation phase ----------------------------
  // @p shard: the tile's shard under the sharded engine (inert otherwise).
  void add_resp_early(Engine& engine, uint32_t shard = 0);  ///< bank-resp xbar
  void add_resp_late(Engine& engine, uint32_t shard = 0);   ///< remote-resp ic
  void add_fetch(Engine& engine, uint32_t shard = 0);       ///< shared I$
  void add_req_early(Engine& engine, uint32_t shard = 0);   ///< dir crossbar
  void add_req_late(Engine& engine, uint32_t shard = 0);    ///< req xbar+banks

  // --- accessors -------------------------------------------------------------
  SpmBank& bank(uint32_t b) { return *banks_[b]; }
  const SpmBank& bank(uint32_t b) const { return *banks_[b]; }
  ICache& icache() { return *icache_; }
  const ICache& icache() const { return *icache_; }
  XbarSwitch* req_xbar() { return req_xbar_; }
  XbarSwitch* bank_resp_xbar() { return bank_resp_xbar_; }
  XbarSwitch* remote_resp_xbar() { return remote_resp_xbar_; }
  XbarSwitch* dir_xbar() { return dir_xbar_; }
  uint32_t index() const { return index_; }
  uint32_t num_banks() const { return static_cast<uint32_t>(banks_.size()); }

  /// True when no packet is parked anywhere in the tile's fabric.
  bool fabric_idle() const;

 private:
  uint32_t index_;
  uint32_t cores_;
  // All raw pointers below are owned by the shard arena handed to the
  // constructor, which outlives the tile (Cluster declares its arenas
  // first). The tile destructor therefore deletes nothing.
  std::vector<SpmBank*> banks_;
  ICache* icache_ = nullptr;
  XbarSwitch* req_xbar_ = nullptr;
  XbarSwitch* bank_resp_xbar_ = nullptr;
  XbarSwitch* remote_resp_xbar_ = nullptr;
  XbarSwitch* dir_xbar_ = nullptr;
  std::vector<std::unique_ptr<ClientSink>> client_sinks_;
};

}  // namespace mempool
