#include "core/cluster.hpp"

#include <sstream>

#include "common/check.hpp"
#include "noc/fabric.hpp"
#include "verify/drc.hpp"

namespace mempool {

// --- CorePort ---------------------------------------------------------------

CorePort::CorePort(Cluster* cluster, uint32_t core)
    : cluster_(cluster), tile_(core / cluster->config().cores_per_tile) {}

bool CorePort::try_issue(const Packet& p) {
  PacketSink* sink;
  if (ideal_) {
    sink = cluster_->tiles_[p.dst_tile]->bank(p.dst_bank).request_input();
  } else if (p.dst_tile == tile_) {
    sink = local_;
  } else {
    sink = remote_;
  }
  if (!sink->can_accept()) return false;
  sink->push(p);
  return true;
}

void CorePort::describe(GraphVisitor& v) const {
  if (ideal_) {
    // TopX: the core reaches every bank's request queue directly.
    for (const auto& t : cluster_->tiles_) {
      for (uint32_t b = 0; b < t->num_banks(); ++b) {
        v.writes(t->bank(b).request_input(), "bank");
      }
    }
    return;
  }
  if (local_ != nullptr) v.writes(local_, "req.local");
  if (remote_ != nullptr) v.writes(remote_, "req.remote");
}

// --- IdealRespBridge ----------------------------------------------------------

IdealRespBridge::IdealRespBridge(std::string name, uint32_t num_banks,
                                 const std::vector<Client*>* clients,
                                 Arena* arena)
    : Component(std::move(name)), clients_(clients) {
  sinks_.reserve(num_banks);
  bufs_.reserve_exact(num_banks, arena);
  for (uint32_t b = 0; b < num_banks; ++b) {
    bufs_.emplace_back(BufferMode::kRegistered, 2, arena);
  }
  for (auto& b : bufs_) {
    // a committed response re-arms the bridge
    b.set_consumer(this, this->name().c_str());
    sinks_.emplace_back(b);
  }
}

void IdealRespBridge::register_clocked(Engine& engine, uint32_t shard) {
  for (auto& b : bufs_) engine.add_clocked(&b, shard);
}

void IdealRespBridge::evaluate(uint64_t /*cycle*/) {
  for (auto& b : bufs_) {
    while (!b.empty()) {
      const Packet p = b.pop();
      Client* c = (*clients_)[p.src];
      c->deliver(p);
      c->wake();
    }
  }
}

bool IdealRespBridge::idle() const {
  for (const auto& b : bufs_) {
    if (!b.empty()) return false;
  }
  return true;
}

void IdealRespBridge::save_state(StateSink& s) const {
  for (const PacketBuffer& buf : bufs_) buf.save_state(s);
}

void IdealRespBridge::load_state(StateSource& s) {
  for (PacketBuffer& buf : bufs_) buf.load_state(s);
}

void IdealRespBridge::describe(GraphVisitor& v) const {
  std::size_t b = 0;
  for (const auto& buf : bufs_) {
    v.reads(&buf, "bank" + std::to_string(b));
    // evaluate() drains each buffer to empty every cycle and delivery into
    // the clients is a terminal (never-backpressured) call: the declared
    // always-accepting port that breaks response-side dependency cycles.
    v.sinks_unconditionally(&buf, "bank" + std::to_string(b));
    ++b;
  }
  for (const Client* c : *clients_) v.writes_terminal(c, "deliver");
}

// --- FabricBuilder ------------------------------------------------------------

const ClusterConfig& FabricBuilder::config() const { return c_->cfg_; }

uint32_t FabricBuilder::num_tiles() const {
  return static_cast<uint32_t>(c_->tiles_.size());
}

Tile& FabricBuilder::tile(uint32_t t) { return *c_->tiles_[t]; }

Arena& FabricBuilder::arena(uint32_t shard) {
  MEMPOOL_CHECK_MSG(shard < c_->arenas_.size(),
                    "FabricBuilder::arena(" << shard << ") with "
                                            << c_->arenas_.size()
                                            << " shards");
  return *c_->arenas_[shard];
}

ButterflyNet* FabricBuilder::add_req_butterfly(ButterflyNet* n,
                                               uint32_t shard) {
  c_->req_bflys_.push_back(n);
  c_->req_bfly_shards_.push_back(shard);
  return n;
}

ButterflyNet* FabricBuilder::add_resp_butterfly(ButterflyNet* n,
                                                uint32_t shard) {
  c_->resp_bflys_.push_back(n);
  c_->resp_bfly_shards_.push_back(shard);
  return n;
}

XbarSwitch* FabricBuilder::add_req_group_xbar(XbarSwitch* x, uint32_t shard) {
  c_->group_req_lxbars_.push_back(x);
  c_->group_req_shards_.push_back(shard);
  return x;
}

XbarSwitch* FabricBuilder::add_resp_group_xbar(XbarSwitch* x, uint32_t shard) {
  c_->group_resp_lxbars_.push_back(x);
  c_->group_resp_shards_.push_back(shard);
  return x;
}

PacketSink* FabricBuilder::shard_boundary(uint32_t producer_shard,
                                          uint32_t consumer_shard,
                                          PacketSink* sink) {
  MEMPOOL_CHECK(sink != nullptr);
  const uint32_t shards = c_->fabric_->num_shards(c_->cfg_);
  MEMPOOL_CHECK_MSG(producer_shard < shards && consumer_shard < shards,
                    "shard_boundary(" << producer_shard << ", "
                                      << consumer_shard << ") with "
                                      << shards << " shards");
  if (producer_shard != consumer_shard) {
    // Pre-check so a mis-wired boundary fails with the full wiring context
    // (which edge, which shards, what was declared so far) instead of the
    // sink's generic "cannot sit on a shard boundary" CHECK.
    MEMPOOL_CHECK_MSG(sink->shard_boundary_capable(),
                      "shard_boundary(" << producer_shard << " -> "
                                        << consumer_shard
                                        << "): sink is not backed by a "
                                           "registered elastic buffer — only "
                                           "registered buffers may cross "
                                           "shards (combinational cross-shard "
                                           "paths break the sharded engine's "
                                           "bit-identity); boundaries "
                                           "declared so far: "
                                        << c_->boundary_registry());
    sink->mark_shard_boundary(consumer_shard);
    ++c_->boundary_counts_[{producer_shard, consumer_shard}];
  }
  return sink;
}

ButterflyNet* FabricBuilder::req_butterfly(std::size_t i) {
  MEMPOOL_CHECK(i < c_->req_bflys_.size());
  return c_->req_bflys_[i];
}

void FabricBuilder::wire_core_ports(uint32_t core, PacketSink* local,
                                    PacketSink* remote) {
  CorePort& port = *c_->ports_[core];
  port.local_ = local;
  port.remote_ = remote;
}

void FabricBuilder::wire_core_ideal(uint32_t core) {
  c_->ports_[core]->ideal_ = true;
}

void FabricBuilder::add_ideal_tile_bridges() {
  MEMPOOL_CHECK_MSG(!c_->clients_.empty(),
                    "ideal bridges need the clients attached");
  for (uint32_t t = 0; t < c_->cfg_.num_tiles; ++t) {
    Arena& a = *c_->arenas_[c_->tile_shard(t)];
    IdealRespBridge* bridge = a.make<IdealRespBridge>(
        "tile" + std::to_string(t) + ".ideal_bridge",
        c_->cfg_.banks_per_tile, &c_->clients_, &a);
    for (uint32_t b = 0; b < c_->cfg_.banks_per_tile; ++b) {
      c_->tiles_[t]->bank(b).connect_response(bridge->bank_input(b));
    }
    c_->bridges_.push_back(bridge);
  }
}

// --- MemoryBuilder ------------------------------------------------------------

const ClusterConfig& MemoryBuilder::config() const { return c_->cfg_; }

const MemoryLayout& MemoryBuilder::layout() const { return c_->layout_; }

uint32_t MemoryBuilder::num_tiles() const {
  return static_cast<uint32_t>(c_->tiles_.size());
}

Tile& MemoryBuilder::tile(uint32_t t) { return *c_->tiles_[t]; }

uint32_t MemoryBuilder::num_shards() const { return c_->num_shards(); }

uint32_t MemoryBuilder::tile_shard(uint32_t t) const {
  return c_->tile_shard(t);
}

Arena& MemoryBuilder::shard_arena(uint32_t shard) {
  MEMPOOL_CHECK_MSG(shard < c_->arenas_.size(),
                    "MemoryBuilder::shard_arena(" << shard << ") with "
                                                  << c_->arenas_.size()
                                                  << " shards");
  return *c_->arenas_[shard];
}

uint32_t MemoryBuilder::group_shard(uint32_t g) const {
  const uint32_t tpg = c_->cfg_.tiles_per_group();
  const uint32_t shard = c_->tile_shard(g * tpg);
  for (uint32_t t = g * tpg; t < (g + 1) * tpg; ++t) {
    MEMPOOL_CHECK_MSG(c_->tile_shard(t) == shard,
                      "group " << g << " spans shards (tile " << t
                               << " is in shard " << c_->tile_shard(t)
                               << ", tile " << g * tpg << " in " << shard
                               << ") — group-local memory engines need the "
                                  "fabric to shard along groups");
  }
  return shard;
}

// --- Cluster ------------------------------------------------------------------

ClusterConfig Cluster::validated(ClusterConfig cfg) {
  cfg.validate();
  return cfg;
}

std::string Cluster::boundary_registry() const {
  if (boundary_counts_.empty()) return "none";
  std::ostringstream os;
  bool first = true;
  for (const auto& [edge, count] : boundary_counts_) {
    if (!first) os << ", ";
    first = false;
    os << edge.first << "->" << edge.second << " x" << count;
  }
  return os.str();
}

Cluster::Cluster(const ClusterConfig& cfg, const InstrMem* imem)
    : cfg_(validated(cfg)),
      memsys_(MemoryRegistry::get(cfg_.memory.name).instantiate(cfg_)),
      layout_(memsys_->make_layout()),
      imem_(imem) {
  MEMPOOL_CHECK(imem != nullptr);

  fabric_ = &FabricRegistry::get(cfg_.topology.name);
  const TileShape shape = fabric_->tile_shape(cfg_);

  // One component arena per fabric shard. Everything below — tiles, banks,
  // crossbars, networks, bridges, memory engines, and all their ElasticBuffer
  // ring storage — is carved out of the owning shard's arena in construction
  // (= evaluation) order, so a shard's per-cycle walk touches one contiguous
  // region instead of chasing individually heap-allocated components.
  const uint32_t shards = fabric_->num_shards(cfg_);
  arenas_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    arenas_.push_back(std::make_unique<Arena>());
  }

  tiles_.reserve(cfg_.num_tiles);
  for (uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    TilePorts ports = fabric_->tile_ports(cfg_, t);
    Arena& a = *arenas_[fabric_->tile_shard(cfg_, t)];
    tiles_.push_back(a.make<Tile>(
        t, cfg_, imem_, a, memsys_->make_banks(t, shape.bank_input_capacity, a),
        shape.fabric, shape.master_ports, shape.slave_ports,
        std::move(ports.slave_req_modes), std::move(ports.slave_resp_modes),
        std::move(ports.dir_route), std::move(ports.resp_route)));
  }

  FabricBuilder builder(this);
  fabric_->build_networks(builder);

  // The memory hierarchy's own machinery (L2, DMA engines) builds after the
  // tiles and fabric networks exist; tcdm builds nothing here.
  MemoryBuilder mem_builder(this);
  memsys_->build(mem_builder);

  ports_.reserve(cfg_.num_cores());
  for (uint32_t c = 0; c < cfg_.num_cores(); ++c) {
    ports_.push_back(std::make_unique<CorePort>(this, c));
  }
}

Cluster::~Cluster() = default;

void Cluster::attach_clients(const std::vector<Client*>& clients) {
  MEMPOOL_CHECK_MSG(clients.size() == cfg_.num_cores(),
                    "need " << cfg_.num_cores() << " clients, got "
                            << clients.size());
  clients_ = clients;
  const uint32_t cpt = cfg_.cores_per_tile;
  for (uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    std::vector<Client*> local(clients_.begin() + t * cpt,
                               clients_.begin() + (t + 1) * cpt);
    tiles_[t]->connect_clients(local);
  }

  // Wire the per-core ports; the plugin decides where each port leads.
  FabricBuilder builder(this);
  for (uint32_t c = 0; c < cfg_.num_cores(); ++c) {
    fabric_->wire_core(builder, c);
    clients_[c]->bind_port(ports_[c].get());
  }
  fabric_->attach_clients_hook(builder);
}

uint32_t Cluster::num_shards() const { return fabric_->num_shards(cfg_); }

uint32_t Cluster::tile_shard(uint32_t tile) const {
  return fabric_->tile_shard(cfg_, tile);
}

void Cluster::build(Engine& engine) {
  MEMPOOL_CHECK_MSG(!built_, "Cluster::build called twice");
  MEMPOOL_CHECK_MSG(!clients_.empty(), "attach_clients before build");
  built_ = true;

  // Shard assignment: every tile-resident component inherits its tile's
  // shard, networks carry the shard the plugin tagged them with at add_*
  // time. Under the sequential engines the ids are inert; under the sharded
  // engine they are the partition (see noc/fabric.hpp, num_shards).
  const uint32_t shards = num_shards();
  std::vector<uint32_t> tshard(tiles_.size());
  for (uint32_t t = 0; t < tiles_.size(); ++t) {
    tshard[t] = tile_shard(t);
    MEMPOOL_CHECK_MSG(tshard[t] < shards, "tile " << t << " assigned to shard "
                                                  << tshard[t] << " of "
                                                  << shards);
  }

  // 1. Response path: bank-response crossbars ...
  for (auto& t : tiles_) t->add_resp_early(engine, tshard[t->index()]);
  // ... response networks ...
  for (std::size_t i = 0; i < group_resp_lxbars_.size(); ++i) {
    engine.add_component(group_resp_lxbars_[i], group_resp_shards_[i]);
    group_resp_lxbars_[i]->register_clocked(engine, group_resp_shards_[i]);
  }
  for (std::size_t i = 0; i < resp_bflys_.size(); ++i) {
    engine.add_component(resp_bflys_[i], resp_bfly_shards_[i]);
    resp_bflys_[i]->register_clocked(engine, resp_bfly_shards_[i]);
  }
  // ... and delivery into the cores.
  for (auto& t : tiles_) t->add_resp_late(engine, tshard[t->index()]);
  for (IdealRespBridge* br : bridges_) {
    engine.add_component(br);
    br->register_clocked(engine);
  }

  // 2. Instruction caches, then the clients themselves.
  for (auto& t : tiles_) t->add_fetch(engine, tshard[t->index()]);
  for (Client* c : clients_) {
    engine.add_component(c, tshard[c->tile()]);
  }

  // 2b. Memory-hierarchy engines (tcdm+l2's DMA frontends/backends), after
  //     the clients — they observe this cycle's core submissions — and
  //     before the request path, so their bank-port traffic lands before the
  //     banks evaluate. tcdm registers nothing.
  memsys_->add_components(engine);

  // 3. Request path: master-port crossbars, request networks, merged request
  //    crossbars, banks.
  for (auto& t : tiles_) t->add_req_early(engine, tshard[t->index()]);
  for (std::size_t i = 0; i < group_req_lxbars_.size(); ++i) {
    engine.add_component(group_req_lxbars_[i], group_req_shards_[i]);
    group_req_lxbars_[i]->register_clocked(engine, group_req_shards_[i]);
  }
  for (std::size_t i = 0; i < req_bflys_.size(); ++i) {
    engine.add_component(req_bflys_[i], req_bfly_shards_[i]);
    req_bflys_[i]->register_clocked(engine, req_bfly_shards_[i]);
  }
  for (auto& t : tiles_) t->add_req_late(engine, tshard[t->index()]);

  // Elaboration-time design-rule check (verify/drc.hpp): automatic in Debug
  // builds and whenever the runtime shard-race checker is compiled in (which
  // this pass also arms). Release builds lint through `--drc` / the tests.
#if !defined(NDEBUG) || defined(MEMPOOL_DRC)
  {
    const verify::DrcReport report = verify::run_drc(engine, shards);
    MEMPOOL_CHECK_MSG(report.clean(), report.summary());
#if defined(MEMPOOL_DRC)
    verify::arm_runtime_checker(engine);
#endif
  }
#endif
}

DmaPortal* Cluster::dma_portal(uint32_t tile) {
  return memsys_->dma_portal(cfg_.group_of_tile(tile));
}

uint32_t Cluster::read_word(uint32_t cpu_addr) const {
  if (memsys_->handles(cpu_addr)) return memsys_->backdoor_read(cpu_addr);
  const BankLocation loc = layout_.locate(cpu_addr);
  return tiles_[loc.tile]->bank(loc.bank).backdoor_read(loc.row);
}

void Cluster::write_word(uint32_t cpu_addr, uint32_t value) {
  if (memsys_->handles(cpu_addr)) {
    memsys_->backdoor_write(cpu_addr, value);
    return;
  }
  const BankLocation loc = layout_.locate(cpu_addr);
  tiles_[loc.tile]->bank(loc.bank).backdoor_write(loc.row, value);
}

Cluster::FabricStats Cluster::fabric_stats() const {
  FabricStats s;
  for (const auto& t : tiles_) {
    if (t->req_xbar()) s.tile_req_traversals += t->req_xbar()->traversals();
    if (t->bank_resp_xbar())
      s.tile_resp_traversals += t->bank_resp_xbar()->traversals();
    if (t->dir_xbar()) s.dir_traversals += t->dir_xbar()->traversals();
    if (t->remote_resp_xbar())
      s.remote_resp_traversals += t->remote_resp_xbar()->traversals();
    for (uint32_t b = 0; b < t->num_banks(); ++b) {
      s.bank_accesses += t->bank(b).accesses();
      s.bank_stall_cycles += t->bank(b).stall_cycles();
    }
    s.icache_hits += t->icache().hits();
    s.icache_misses += t->icache().misses();
    s.icache_refills += t->icache().refills();
  }
  for (const auto& x : group_req_lxbars_) s.group_local_traversals += x->traversals();
  for (const auto& x : group_resp_lxbars_) s.group_local_traversals += x->traversals();
  for (const auto& b : req_bflys_) s.butterfly_traversals += b->traversals();
  for (const auto& b : resp_bflys_) s.butterfly_traversals += b->traversals();
  return s;
}

bool Cluster::fabric_idle() const {
  for (const auto& t : tiles_) {
    if (!t->fabric_idle()) return false;
  }
  for (const auto& x : group_req_lxbars_) {
    if (!x->idle()) return false;
  }
  for (const auto& x : group_resp_lxbars_) {
    if (!x->idle()) return false;
  }
  for (const auto& b : req_bflys_) {
    if (!b->idle()) return false;
  }
  for (const auto& b : resp_bflys_) {
    if (!b->idle()) return false;
  }
  return memsys_->idle();
}

}  // namespace mempool
