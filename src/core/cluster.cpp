#include "core/cluster.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool {

namespace {

/// Register placement inside a global butterfly: layer 0 is the master-port
/// boundary, layer 1 the mid-network pipeline stage ("a single pipeline stage
/// midway through its log4(64) = 3 layers"). Butterflies with a single layer
/// move the second boundary onto the destination tile's slave port so that
/// the zero-load latency contract (5 cycles) holds at every cluster size.
std::vector<BufferMode> bfly_layer_modes(unsigned layers) {
  std::vector<BufferMode> m(layers, BufferMode::kCombinational);
  m[0] = BufferMode::kRegistered;
  if (layers >= 2) m[1] = BufferMode::kRegistered;
  return m;
}

unsigned bfly_layers(uint32_t endpoints) {
  return log2_exact(endpoints) / 2;  // radix-4
}

}  // namespace

// --- CorePort ---------------------------------------------------------------

CorePort::CorePort(Cluster* cluster, uint32_t core)
    : cluster_(cluster), tile_(core / cluster->config().cores_per_tile) {}

bool CorePort::try_issue(const Packet& p) {
  PacketSink* sink;
  if (ideal_) {
    sink = cluster_->tiles_[p.dst_tile]->bank(p.dst_bank).request_input();
  } else if (p.dst_tile == tile_) {
    sink = local_;
  } else {
    sink = remote_;
  }
  if (!sink->can_accept()) return false;
  sink->push(p);
  return true;
}

// --- IdealRespBridge ----------------------------------------------------------

IdealRespBridge::IdealRespBridge(std::string name, uint32_t num_banks,
                                 const std::vector<Client*>* clients)
    : Component(std::move(name)), clients_(clients) {
  sinks_.reserve(num_banks);
  for (uint32_t b = 0; b < num_banks; ++b) {
    bufs_.emplace_back(BufferMode::kRegistered, 2);
  }
  for (auto& b : bufs_) {
    b.set_consumer(this);  // a committed response re-arms the bridge
    sinks_.emplace_back(b);
  }
}

void IdealRespBridge::register_clocked(Engine& engine) {
  for (auto& b : bufs_) engine.add_clocked(&b);
}

void IdealRespBridge::evaluate(uint64_t /*cycle*/) {
  for (auto& b : bufs_) {
    while (!b.empty()) {
      const Packet p = b.pop();
      Client* c = (*clients_)[p.src];
      c->deliver(p);
      c->wake();
    }
  }
}

bool IdealRespBridge::idle() const {
  for (const auto& b : bufs_) {
    if (!b.empty()) return false;
  }
  return true;
}

// --- Cluster ------------------------------------------------------------------

Cluster::Cluster(const ClusterConfig& cfg, const InstrMem* imem)
    : cfg_(cfg), layout_(cfg), imem_(imem) {
  cfg_.validate();
  MEMPOOL_CHECK(imem != nullptr);

  const uint32_t cpt = cfg_.cores_per_tile;
  const bool fabric = cfg_.topology != Topology::kTopX;

  // Per-topology tile shape.
  uint32_t masters = 0, slaves = 0;
  switch (cfg_.topology) {
    case Topology::kTop1: masters = 1; slaves = 1; break;
    case Topology::kTop4: masters = 0; slaves = cpt; break;
    case Topology::kTopH: masters = cfg_.num_groups; slaves = cfg_.num_groups; break;
    case Topology::kTopX: break;
  }

  const unsigned glayers =
      cfg_.topology == Topology::kTopH ? bfly_layers(cfg_.tiles_per_group())
      : cfg_.topology == Topology::kTopX ? 0
                                         : bfly_layers(cfg_.num_tiles);
  const bool slave_reg =
      fabric && cfg_.topology != Topology::kTopH
          ? glayers < 2
          : (cfg_.topology == Topology::kTopH && bfly_layers(cfg_.tiles_per_group()) < 2);

  tiles_.reserve(cfg_.num_tiles);
  for (uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    std::vector<BufferMode> sreq, sresp;
    RouteFn dir_route, resp_route;
    switch (cfg_.topology) {
      case Topology::kTop1: {
        sreq = {slave_reg ? BufferMode::kRegistered : BufferMode::kCombinational};
        sresp = sreq;
        dir_route = [](const Packet&) { return 0u; };
        resp_route = [t, cpt](const Packet& p) {
          return p.src_tile == t ? static_cast<unsigned>(p.src % cpt)
                                 : static_cast<unsigned>(cpt);
        };
        break;
      }
      case Topology::kTop4: {
        const BufferMode m = slave_reg ? BufferMode::kRegistered
                                       : BufferMode::kCombinational;
        sreq.assign(cpt, m);
        sresp.assign(cpt, m);
        resp_route = [t, cpt](const Packet& p) {
          return p.src_tile == t ? static_cast<unsigned>(p.src % cpt)
                                 : static_cast<unsigned>(cpt + p.src % cpt);
        };
        break;
      }
      case Topology::kTopH: {
        // Slave port 0: intra-group crossbar (combinational at the slave).
        // Slave ports 1..3: butterflies from the other groups; registered
        // only when the group butterfly has a single layer.
        const BufferMode bm = slave_reg ? BufferMode::kRegistered
                                        : BufferMode::kCombinational;
        sreq = {BufferMode::kCombinational, bm, bm, bm};
        sresp = {BufferMode::kCombinational, bm, bm, bm};
        const uint32_t g = cfg_.group_of_tile(t);
        const uint32_t ng = cfg_.num_groups;
        const ClusterConfig cfgc = cfg_;
        dir_route = [cfgc, g, ng](const Packet& p) {
          return (cfgc.group_of_tile(p.dst_tile) - g + ng) % ng;  // 0 = local
        };
        resp_route = [cfgc, t, g, ng, cpt](const Packet& p) {
          if (p.src_tile == t) return static_cast<unsigned>(p.src % cpt);
          return static_cast<unsigned>(
              cpt + (cfgc.group_of_tile(p.src_tile) - g + ng) % ng);
        };
        break;
      }
      case Topology::kTopX:
        break;
    }
    tiles_.push_back(std::make_unique<Tile>(
        t, cfg_, imem_, fabric, masters, slaves, std::move(sreq),
        std::move(sresp), std::move(dir_route), std::move(resp_route),
        /*bank_input_capacity=*/fabric ? 2 : 0));
  }

  switch (cfg_.topology) {
    case Topology::kTop1:
    case Topology::kTop4:
      build_top1_top4();
      break;
    case Topology::kTopH:
      build_toph();
      break;
    case Topology::kTopX:
      break;  // bridges are created in attach_clients (they need the list)
  }

  ports_.reserve(cfg_.num_cores());
  for (uint32_t c = 0; c < cfg_.num_cores(); ++c) {
    ports_.push_back(std::make_unique<CorePort>(this, c));
  }
}

Cluster::~Cluster() = default;

void Cluster::build_top1_top4() {
  const uint32_t n = cfg_.num_tiles;
  const uint32_t cpt = cfg_.cores_per_tile;
  const unsigned layers = bfly_layers(n);
  const uint32_t planes = cfg_.topology == Topology::kTop1 ? 1 : cpt;

  for (uint32_t k = 0; k < planes; ++k) {
    auto req = std::make_unique<ButterflyNet>(
        "req_bfly" + std::to_string(k), n, 4, bfly_layer_modes(layers),
        [](const Packet& p) { return static_cast<unsigned>(p.dst_tile); });
    auto resp = std::make_unique<ButterflyNet>(
        "resp_bfly" + std::to_string(k), n, 4, bfly_layer_modes(layers),
        [](const Packet& p) { return static_cast<unsigned>(p.src_tile); });
    for (uint32_t t = 0; t < n; ++t) {
      req->connect_output(t, tiles_[t]->slave_req(k));
      resp->connect_output(t, tiles_[t]->resp_slave(k));
      if (cfg_.topology == Topology::kTop1) {
        tiles_[t]->connect_dir_output(0, req->input(t));
      }
      tiles_[t]->connect_resp_remote_output(k, resp->input(t));
    }
    req_bflys_.push_back(std::move(req));
    resp_bflys_.push_back(std::move(resp));
  }
}

void Cluster::build_toph() {
  const uint32_t ng = cfg_.num_groups;
  const uint32_t tpg = cfg_.tiles_per_group();
  const unsigned layers = bfly_layers(tpg);

  // Intra-group fully-connected 16×16 crossbars (registered inputs: the
  // tiles' master-port boundary).
  for (uint32_t g = 0; g < ng; ++g) {
    auto lreq = std::make_unique<XbarSwitch>(
        "g" + std::to_string(g) + ".req_lxbar", tpg, BufferMode::kRegistered,
        tpg, [tpg](const Packet& p) {
          return static_cast<unsigned>(p.dst_tile % tpg);
        });
    auto lresp = std::make_unique<XbarSwitch>(
        "g" + std::to_string(g) + ".resp_lxbar", tpg, BufferMode::kRegistered,
        tpg, [tpg](const Packet& p) {
          return static_cast<unsigned>(p.src_tile % tpg);
        });
    for (uint32_t j = 0; j < tpg; ++j) {
      Tile& tl = *tiles_[g * tpg + j];
      tl.connect_dir_output(0, lreq->input(j));
      lreq->connect_output(j, tl.slave_req(0));
      tl.connect_resp_remote_output(0, lresp->input(j));
      lresp->connect_output(j, tl.resp_slave(0));
    }
    group_req_lxbars_.push_back(std::move(lreq));
    group_resp_lxbars_.push_back(std::move(lresp));
  }

  // Inter-group butterflies: one per ordered pair (source group g, direction
  // i in 1..3 toward group (g+i) mod 4) and per direction of travel.
  for (uint32_t g = 0; g < ng; ++g) {
    for (uint32_t i = 1; i < ng; ++i) {
      const uint32_t h = (g + i) % ng;  // destination group
      auto req = std::make_unique<ButterflyNet>(
          "req_bfly_g" + std::to_string(g) + "_d" + std::to_string(i), tpg, 4,
          bfly_layer_modes(layers), [tpg](const Packet& p) {
            return static_cast<unsigned>(p.dst_tile % tpg);
          });
      auto resp = std::make_unique<ButterflyNet>(
          "resp_bfly_g" + std::to_string(g) + "_d" + std::to_string(i), tpg, 4,
          bfly_layer_modes(layers), [tpg](const Packet& p) {
            return static_cast<unsigned>(p.src_tile % tpg);
          });
      for (uint32_t j = 0; j < tpg; ++j) {
        Tile& src_tile = *tiles_[g * tpg + j];
        Tile& dst_tile = *tiles_[h * tpg + j];
        src_tile.connect_dir_output(i, req->input(j));
        req->connect_output(j, dst_tile.slave_req(i));
        src_tile.connect_resp_remote_output(i, resp->input(j));
        resp->connect_output(j, dst_tile.resp_slave(i));
      }
      req_bflys_.push_back(std::move(req));
      resp_bflys_.push_back(std::move(resp));
    }
  }
}

void Cluster::attach_clients(const std::vector<Client*>& clients) {
  MEMPOOL_CHECK_MSG(clients.size() == cfg_.num_cores(),
                    "need " << cfg_.num_cores() << " clients, got "
                            << clients.size());
  clients_ = clients;
  const uint32_t cpt = cfg_.cores_per_tile;
  for (uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    std::vector<Client*> local(clients_.begin() + t * cpt,
                               clients_.begin() + (t + 1) * cpt);
    tiles_[t]->connect_clients(local);
  }

  // Wire the per-core ports.
  for (uint32_t c = 0; c < cfg_.num_cores(); ++c) {
    CorePort& port = *ports_[c];
    const uint32_t t = c / cpt;
    const uint32_t ct = c % cpt;
    switch (cfg_.topology) {
      case Topology::kTopX:
        port.ideal_ = true;
        break;
      case Topology::kTop4:
        port.local_ = tiles_[t]->core_local_req(ct);
        port.remote_ = req_bflys_[ct]->input(t);
        break;
      case Topology::kTop1:
      case Topology::kTopH:
        port.local_ = tiles_[t]->core_local_req(ct);
        port.remote_ = tiles_[t]->dir_input(ct);
        break;
    }
    clients_[c]->bind_port(&port);
  }

  if (cfg_.topology == Topology::kTopX) {
    for (uint32_t t = 0; t < cfg_.num_tiles; ++t) {
      auto bridge = std::make_unique<IdealRespBridge>(
          "tile" + std::to_string(t) + ".ideal_bridge", cfg_.banks_per_tile,
          &clients_);
      for (uint32_t b = 0; b < cfg_.banks_per_tile; ++b) {
        tiles_[t]->bank(b).connect_response(bridge->bank_input(b));
      }
      bridges_.push_back(std::move(bridge));
    }
  }
}

void Cluster::build(Engine& engine) {
  MEMPOOL_CHECK_MSG(!built_, "Cluster::build called twice");
  MEMPOOL_CHECK_MSG(!clients_.empty(), "attach_clients before build");
  built_ = true;

  // 1. Response path: bank-response crossbars ...
  for (auto& t : tiles_) t->add_resp_early(engine);
  // ... response networks ...
  for (auto& x : group_resp_lxbars_) {
    engine.add_component(x.get());
    x->register_clocked(engine);
  }
  for (auto& b : resp_bflys_) {
    engine.add_component(b.get());
    b->register_clocked(engine);
  }
  // ... and delivery into the cores.
  for (auto& t : tiles_) t->add_resp_late(engine);
  for (auto& br : bridges_) {
    engine.add_component(br.get());
    br->register_clocked(engine);
  }

  // 2. Instruction caches, then the clients themselves.
  for (auto& t : tiles_) t->add_fetch(engine);
  for (Client* c : clients_) engine.add_component(c);

  // 3. Request path: master-port crossbars, request networks, merged request
  //    crossbars, banks.
  for (auto& t : tiles_) t->add_req_early(engine);
  for (auto& x : group_req_lxbars_) {
    engine.add_component(x.get());
    x->register_clocked(engine);
  }
  for (auto& b : req_bflys_) {
    engine.add_component(b.get());
    b->register_clocked(engine);
  }
  for (auto& t : tiles_) t->add_req_late(engine);
}

uint32_t Cluster::read_word(uint32_t cpu_addr) const {
  const BankLocation loc = layout_.locate(cpu_addr);
  return tiles_[loc.tile]->bank(loc.bank).backdoor_read(loc.row);
}

void Cluster::write_word(uint32_t cpu_addr, uint32_t value) {
  const BankLocation loc = layout_.locate(cpu_addr);
  tiles_[loc.tile]->bank(loc.bank).backdoor_write(loc.row, value);
}

Cluster::FabricStats Cluster::fabric_stats() const {
  FabricStats s;
  for (const auto& t : tiles_) {
    if (t->req_xbar()) s.tile_req_traversals += t->req_xbar()->traversals();
    if (t->bank_resp_xbar())
      s.tile_resp_traversals += t->bank_resp_xbar()->traversals();
    if (t->dir_xbar()) s.dir_traversals += t->dir_xbar()->traversals();
    if (t->remote_resp_xbar())
      s.remote_resp_traversals += t->remote_resp_xbar()->traversals();
    for (uint32_t b = 0; b < t->num_banks(); ++b) {
      s.bank_accesses += t->bank(b).accesses();
      s.bank_stall_cycles += t->bank(b).stall_cycles();
    }
    s.icache_hits += t->icache().hits();
    s.icache_misses += t->icache().misses();
    s.icache_refills += t->icache().refills();
  }
  for (const auto& x : group_req_lxbars_) s.group_local_traversals += x->traversals();
  for (const auto& x : group_resp_lxbars_) s.group_local_traversals += x->traversals();
  for (const auto& b : req_bflys_) s.butterfly_traversals += b->traversals();
  for (const auto& b : resp_bflys_) s.butterfly_traversals += b->traversals();
  return s;
}

bool Cluster::fabric_idle() const {
  for (const auto& t : tiles_) {
    if (!t->fabric_idle()) return false;
  }
  for (const auto& x : group_req_lxbars_) {
    if (!x->idle()) return false;
  }
  for (const auto& x : group_resp_lxbars_) {
    if (!x->idle()) return false;
  }
  for (const auto& b : req_bflys_) {
    if (!b->idle()) return false;
  }
  for (const auto& b : resp_bflys_) {
    if (!b->idle()) return false;
  }
  return true;
}

}  // namespace mempool
