#pragma once
// Event-based energy model (Section VI-D, Figure 10).
//
// The paper extracts power from post-layout simulation in GF 22FDX at
// TT/0.80 V/25 °C. A cycle-level model cannot derive those numbers from first
// principles, so the per-event energies (EnergyParams, power/energy_params.hpp)
// are *technology calibration constants* chosen such that the analytic
// per-instruction identities of Figure 10 hold exactly.
//
// The simulator then *measures* event counts (switch traversals, bank
// accesses, instruction mix, I$ activity) and multiplies by these constants,
// so every aggregate number (tile power, breakdown percentages, local/remote
// energy ratio) is a measured result, not a restatement of the constants.
// measure() is topology-agnostic — it prices the counters every fabric
// reports — so newly registered FabricTopology plugins are covered without
// edits here; the per-topology *analytic* rows live on the plugins
// (FabricTopology::energy_rows).

#include <cstdint>

#include "core/cluster.hpp"
#include "core/snitch.hpp"
#include "power/energy_params.hpp"

namespace mempool {

/// Dynamic energy by component, in pJ.
struct EnergyBreakdown {
  double cores = 0;
  double icache = 0;
  double banks = 0;
  double tile_interconnect = 0;    ///< Crossbars inside the tiles.
  double global_interconnect = 0;  ///< Group crossbars + butterflies.
  double total() const {
    return cores + icache + banks + tile_interconnect + global_interconnect;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& p = EnergyParams{}) : p_(p) {}

  const EnergyParams& params() const { return p_; }

  /// Measured dynamic energy of a finished run: event counts from the
  /// cluster's fabric and the aggregated core statistics.
  EnergyBreakdown measure(const Cluster& cluster,
                          const SnitchCore::Stats& cores) const;

  // --- analytic Figure-10 rows ---------------------------------------------
  InstrEnergy local_load() const;
  /// TopH load to a tile in a remote group (the paper's "remote load").
  InstrEnergy remote_load_cross_group() const;
  /// TopH load to a tile in the same local group.
  InstrEnergy remote_load_same_group() const;
  InstrEnergy add_op() const;
  InstrEnergy mul_op() const;

 private:
  EnergyParams p_;
};

}  // namespace mempool
