#pragma once
// Event-based energy model (Section VI-D, Figure 10).
//
// The paper extracts power from post-layout simulation in GF 22FDX at
// TT/0.80 V/25 °C. A cycle-level model cannot derive those numbers from first
// principles, so the per-event energies below are *technology calibration
// constants* chosen such that the analytic per-instruction identities of
// Figure 10 hold exactly:
//
//   local  load = 1.8 (core) +  4.5 (interconnect) + 2.1 (banks) =  8.4 pJ
//   remote load = 1.8 (core) + 13.0 (interconnect) + 2.1 (banks) = 16.9 pJ
//   mul = 7.0 pJ, add = 3.7 pJ (core only)
//
// The simulator then *measures* event counts (switch traversals, bank
// accesses, instruction mix, I$ activity) and multiplies by these constants,
// so every aggregate number (tile power, breakdown percentages, local/remote
// energy ratio) is a measured result, not a restatement of the constants.

#include <cstdint>

#include "core/cluster.hpp"
#include "core/snitch.hpp"

namespace mempool {

struct EnergyParams {
  // Core-side energy per instruction class (pJ).
  double core_add = 3.7;      ///< Simple ALU op (paper's "add").
  double core_mul = 7.0;      ///< Paper's "mul".
  double core_div = 14.0;     ///< Extrapolated (not reported in the paper).
  double core_branch = 3.0;   ///< Extrapolated.
  double core_ls = 1.8;       ///< Core-side share of a load/store/AMO.
  // Memory.
  double bank_access = 2.1;   ///< One SPM bank read/write/AMO.
  // Interconnect, per switch traversal.
  double tile_xbar_hop = 2.25;  ///< Merged request / bank-response crossbar.
  double dir_xbar_hop = 0.45;   ///< Master-port and remote-response crossbar.
  double group_xbar_hop = 2.6;  ///< TopH 16×16 intra-group crossbar.
  double bfly_layer_hop = 1.9;  ///< One butterfly layer.
  // Instruction cache.
  double icache_hit = 4.6;    ///< Tag + data access of the 4-way 2 KiB I$.
  double icache_miss = 60.0;  ///< Refill line fill + AXI transfer.
};

/// Dynamic energy by component, in pJ.
struct EnergyBreakdown {
  double cores = 0;
  double icache = 0;
  double banks = 0;
  double tile_interconnect = 0;    ///< Crossbars inside the tiles.
  double global_interconnect = 0;  ///< Group crossbars + butterflies.
  double total() const {
    return cores + icache + banks + tile_interconnect + global_interconnect;
  }
};

/// Analytic energy of one instruction (a Figure-10 row).
struct InstrEnergy {
  double core = 0;
  double interconnect = 0;
  double memory = 0;
  double total() const { return core + interconnect + memory; }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& p = EnergyParams{}) : p_(p) {}

  const EnergyParams& params() const { return p_; }

  /// Measured dynamic energy of a finished run: event counts from the
  /// cluster's fabric and the aggregated core statistics.
  EnergyBreakdown measure(const Cluster& cluster,
                          const SnitchCore::Stats& cores) const;

  // --- analytic Figure-10 rows ---------------------------------------------
  InstrEnergy local_load() const;
  /// TopH load to a tile in a remote group (the paper's "remote load").
  InstrEnergy remote_load_cross_group() const;
  /// TopH load to a tile in the same local group.
  InstrEnergy remote_load_same_group() const;
  InstrEnergy add_op() const;
  InstrEnergy mul_op() const;

 private:
  EnergyParams p_;
};

}  // namespace mempool
