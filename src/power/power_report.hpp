#pragma once
// Power report at a given clock (Section VI-D: matmul at 500 MHz,
// TT/0.80 V/25 °C): dynamic power from measured event energies plus a static
// (leakage + clock tree) floor per component.

#include <cstdint>

#include "power/energy_model.hpp"

namespace mempool {

/// Static power floor, mW. Calibrated so the Section VI-D breakdown
/// percentages are in range when running matmul at 500 MHz.
struct StaticPowerParams {
  double icache_per_tile = 2.3;
  double cores_per_tile = 1.0;
  double banks_per_tile = 1.6;
  double interconnect_per_tile = 0.4;
  double cluster_top = 150.0;  ///< Top-level interconnect, clock tree, IO.
};

struct PowerReport {
  // Per-tile averages, mW.
  double tile_icache = 0;
  double tile_cores = 0;
  double tile_banks = 0;
  double tile_interconnect = 0;
  double tile_total() const {
    return tile_icache + tile_cores + tile_banks + tile_interconnect;
  }
  // Cluster, W.
  double cluster_total_w = 0;
  double tiles_fraction = 0;  ///< Share of cluster power spent in the tiles.
};

/// Convert a measured energy breakdown over @p cycles at @p freq_hz into the
/// Section VI-D power figures.
PowerReport make_power_report(const EnergyBreakdown& energy, uint64_t cycles,
                              uint32_t num_tiles, double freq_hz,
                              const StaticPowerParams& sp = StaticPowerParams{});

}  // namespace mempool
