#include "power/energy_model.hpp"

namespace mempool {

EnergyBreakdown EnergyModel::measure(const Cluster& cluster,
                                     const SnitchCore::Stats& c) const {
  EnergyBreakdown e;
  e.cores = static_cast<double>(c.alu) * p_.core_add +
            static_cast<double>(c.mul) * p_.core_mul +
            static_cast<double>(c.div) * p_.core_div +
            static_cast<double>(c.branches) * p_.core_branch +
            static_cast<double>(c.loads_local + c.loads_remote +
                                c.stores_local + c.stores_remote + c.amos) *
                p_.core_ls;

  const Cluster::FabricStats f = cluster.fabric_stats();
  // A miss *query* is a tag lookup that repeats while the refill is in
  // flight; the expensive part (line fill + AXI transfer) happens once per
  // refill.
  e.icache = static_cast<double>(f.icache_hits) * p_.icache_hit +
             static_cast<double>(f.icache_refills) * p_.icache_miss;
  e.banks = static_cast<double>(f.bank_accesses) * p_.bank_access;
  e.tile_interconnect =
      static_cast<double>(f.tile_req_traversals + f.tile_resp_traversals) *
          p_.tile_xbar_hop +
      static_cast<double>(f.dir_traversals + f.remote_resp_traversals) *
          p_.dir_xbar_hop;
  e.global_interconnect =
      static_cast<double>(f.group_local_traversals) * p_.group_xbar_hop +
      static_cast<double>(f.butterfly_traversals) * p_.bfly_layer_hop;
  return e;
}

InstrEnergy EnergyModel::local_load() const {
  // core -> merged request crossbar -> bank -> bank-response crossbar -> core
  return {p_.core_ls, 2 * p_.tile_xbar_hop, p_.bank_access};
}

InstrEnergy EnergyModel::remote_load_cross_group() const {
  // dir xbar + 2 butterfly layers + dest tile req xbar, then bank-resp xbar +
  // 2 butterfly layers + remote-resp xbar on the way back.
  const double ic = p_.dir_xbar_hop + 2 * p_.bfly_layer_hop +
                    p_.tile_xbar_hop + p_.tile_xbar_hop +
                    2 * p_.bfly_layer_hop + p_.dir_xbar_hop;
  return {p_.core_ls, ic, p_.bank_access};
}

InstrEnergy EnergyModel::remote_load_same_group() const {
  const double ic = p_.dir_xbar_hop + p_.group_xbar_hop + p_.tile_xbar_hop +
                    p_.tile_xbar_hop + p_.group_xbar_hop + p_.dir_xbar_hop;
  return {p_.core_ls, ic, p_.bank_access};
}

InstrEnergy EnergyModel::add_op() const { return {p_.core_add, 0, 0}; }
InstrEnergy EnergyModel::mul_op() const { return {p_.core_mul, 0, 0}; }

}  // namespace mempool
