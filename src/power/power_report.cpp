#include "power/power_report.hpp"

#include "common/check.hpp"

namespace mempool {

PowerReport make_power_report(const EnergyBreakdown& energy, uint64_t cycles,
                              uint32_t num_tiles, double freq_hz,
                              const StaticPowerParams& sp) {
  MEMPOOL_CHECK(cycles > 0 && num_tiles > 0 && freq_hz > 0);
  const double seconds = static_cast<double>(cycles) / freq_hz;
  const double tiles = static_cast<double>(num_tiles);
  // pJ / s = 1e-12 W; report mW.
  auto dyn_mw_per_tile = [&](double pj) {
    return pj * 1e-12 / seconds * 1e3 / tiles;
  };

  PowerReport r;
  r.tile_icache = dyn_mw_per_tile(energy.icache) + sp.icache_per_tile;
  r.tile_cores = dyn_mw_per_tile(energy.cores) + sp.cores_per_tile;
  r.tile_banks = dyn_mw_per_tile(energy.banks) + sp.banks_per_tile;
  r.tile_interconnect =
      dyn_mw_per_tile(energy.tile_interconnect) + sp.interconnect_per_tile;

  const double tiles_total_mw = r.tile_total() * tiles;
  const double top_mw =
      energy.global_interconnect * 1e-12 / seconds * 1e3 + sp.cluster_top;
  r.cluster_total_w = (tiles_total_mw + top_mw) * 1e-3;
  r.tiles_fraction = tiles_total_mw / (tiles_total_mw + top_mw);
  return r;
}

}  // namespace mempool
