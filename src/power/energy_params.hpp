#pragma once
// Technology calibration constants of the event-based energy model
// (Section VI-D) and the per-instruction analytic energy record, split out of
// energy_model.hpp so the fabric-topology plugin interface (noc/fabric.hpp)
// can expose per-topology analytic rows without depending on the Cluster.
//
// The per-event energies are calibration constants chosen such that the
// analytic per-instruction identities of Figure 10 hold exactly:
//
//   local  load = 1.8 (core) +  4.5 (interconnect) + 2.1 (banks) =  8.4 pJ
//   remote load = 1.8 (core) + 13.0 (interconnect) + 2.1 (banks) = 16.9 pJ
//   mul = 7.0 pJ, add = 3.7 pJ (core only)

namespace mempool {

struct EnergyParams {
  // Core-side energy per instruction class (pJ).
  double core_add = 3.7;      ///< Simple ALU op (paper's "add").
  double core_mul = 7.0;      ///< Paper's "mul".
  double core_div = 14.0;     ///< Extrapolated (not reported in the paper).
  double core_branch = 3.0;   ///< Extrapolated.
  double core_ls = 1.8;       ///< Core-side share of a load/store/AMO.
  // Memory.
  double bank_access = 2.1;   ///< One SPM bank read/write/AMO.
  // Interconnect, per switch traversal.
  double tile_xbar_hop = 2.25;  ///< Merged request / bank-response crossbar.
  double dir_xbar_hop = 0.45;   ///< Master-port and remote-response crossbar.
  double group_xbar_hop = 2.6;  ///< TopH 16×16 intra-group crossbar.
  double bfly_layer_hop = 1.9;  ///< One butterfly layer.
  // Instruction cache.
  double icache_hit = 4.6;    ///< Tag + data access of the 4-way 2 KiB I$.
  double icache_miss = 60.0;  ///< Refill line fill + AXI transfer.
  // L2 / AXI (the tcdm+l2 memory system; extrapolated, not paper-reported).
  double l2_access = 11.0;    ///< One L2 SRAM-macro word read/write.
  double axi_word = 6.0;      ///< One word over the group's AXI port.
};

/// Analytic energy of one instruction (a Figure-10 row).
struct InstrEnergy {
  double core = 0;
  double interconnect = 0;
  double memory = 0;
  double total() const { return core + interconnect + memory; }
};

}  // namespace mempool
