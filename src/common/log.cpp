#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace mempool {

namespace {
// Atomic so worker threads of the parallel sweep runner can log while the
// main thread adjusts verbosity.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // One insertion per line so concurrent runner workers cannot interleave
  // fragments of each other's messages.
  std::string line = "[mempool:";
  line += level_name(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::cerr << line;
}
}  // namespace detail

}  // namespace mempool
