#pragma once
// Small constexpr bit-manipulation helpers used by the address map, the
// scrambler, and the butterfly-network index arithmetic.

#include <cstdint>

namespace mempool {

/// True iff @p x is a power of two (0 is not).
constexpr bool is_pow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x > 0.
constexpr unsigned log2_floor(uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// log2 of a power of two (exact).
constexpr unsigned log2_exact(uint64_t x) { return log2_floor(x); }

/// Extract @p width bits of @p v starting at bit @p lsb.
constexpr uint32_t bits(uint32_t v, unsigned lsb, unsigned width) {
  return width == 0 ? 0u
                    : (v >> lsb) & (width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u));
}

/// Insert the low @p width bits of @p field into @p v at bit @p lsb.
constexpr uint32_t insert_bits(uint32_t v, unsigned lsb, unsigned width, uint32_t field) {
  const uint32_t mask = width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return (v & ~(mask << lsb)) | ((field & mask) << lsb);
}

/// Sign-extend the low @p width bits of @p v to 32 bits.
constexpr int32_t sign_extend(uint32_t v, unsigned width) {
  const uint32_t m = 1u << (width - 1);
  return static_cast<int32_t>(((v & ((width >= 32) ? 0xFFFFFFFFu : ((1u << width) - 1u))) ^ m) - m);
}

/// Digit @p i (0 = least significant) of @p v in base 2^digit_bits.
constexpr uint32_t radix_digit(uint32_t v, unsigned i, unsigned digit_bits) {
  return bits(v, i * digit_bits, digit_bits);
}

/// Round @p v up to the next multiple of @p align (align must be pow2).
constexpr uint32_t align_up(uint32_t v, uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace mempool
