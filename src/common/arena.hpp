#pragma once
// Chunked bump allocator backing the per-shard component arenas.
//
// The engine's evaluate scan walks components in fabric-evaluation order;
// when every component is an individually heap-allocated unique_ptr the walk
// chases pointers scattered across the heap. Cluster::build instead carves
// each shard's components (and their buffer ring storage) out of one Arena
// in evaluation order, so consecutive components in the scan sit at
// monotonically increasing addresses in a handful of large chunks.
//
// Objects constructed in an Arena are never freed individually: memory is
// reclaimed all at once when the Arena is destroyed. Destructors of
// non-trivially-destructible objects created through make<T>() are recorded
// and run in reverse construction order at Arena destruction — the same
// order a stack of unique_ptr members would produce.
//
// Arenas are not thread-safe; elaboration is single-threaded.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace mempool {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;  // 1 MiB

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    MEMPOOL_CHECK(chunk_bytes_ >= 1024);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;
  Arena& operator=(Arena&&) = delete;

  ~Arena() {
    // Reverse construction order, like stacked unique_ptr members.
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->fn(it->obj);
    }
  }

  /// Raw aligned storage; never individually freed. @p align must be a power
  /// of two no larger than alignof(std::max_align_t)… larger alignments (up
  /// to one cache line) are honoured by over-aligned chunk allocation.
  void* allocate(std::size_t size, std::size_t align) {
    MEMPOOL_CHECK(align != 0 && (align & (align - 1)) == 0);
    MEMPOOL_CHECK_MSG(align <= kChunkAlign,
                      "arena allocation alignment " << align << " exceeds "
                                                    << kChunkAlign);
    if (size == 0) size = 1;
    std::size_t off = (cursor_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || off + size > chunk_cap_) {
      grow(size, align);
      off = (cursor_ + align - 1) & ~(align - 1);
    }
    void* p = chunks_.back().get() + off;
    cursor_ = off + size;
    bytes_used_ += size;
    ++allocations_;
    return p;
  }

  /// Construct a T inside the arena. The object lives until the Arena dies;
  /// its destructor is registered unless trivially destructible.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* storage = allocate(sizeof(T), alignof(T));
    T* obj = new (storage) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Uninitialised array of trivially-destructible Ts (ring storage et al).
  template <typename T>
  T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays skip per-element destructor registration");
    return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
  }

  // --- stats (reported by Cluster::build diagnostics) ---
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const { return chunks_.size() * chunk_cap_approx_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t allocation_count() const { return allocations_; }

 private:
  static constexpr std::size_t kChunkAlign = 64;  // one cache line

  struct Dtor {
    void* obj;
    void (*fn)(void*);
  };

  struct Free {
    void operator()(unsigned char* p) const { ::operator delete[](p, std::align_val_t(kChunkAlign)); }
  };

  void grow(std::size_t size, std::size_t align) {
    // An oversized request gets its own chunk; the bump cursor then starts a
    // fresh standard chunk so later small allocations stay dense.
    std::size_t want = size + align;
    std::size_t cap = want > chunk_bytes_ ? want : chunk_bytes_;
    auto* raw = static_cast<unsigned char*>(
        ::operator new[](cap, std::align_val_t(kChunkAlign)));
    chunks_.emplace_back(raw);
    chunk_cap_ = cap;
    chunk_cap_approx_ = chunk_bytes_;
    cursor_ = 0;
  }

  std::size_t chunk_bytes_;
  std::size_t chunk_cap_ = 0;         // capacity of the current (last) chunk
  std::size_t chunk_cap_approx_ = 0;  // nominal chunk size for stats
  std::size_t cursor_ = 0;            // bump offset inside the current chunk
  std::size_t bytes_used_ = 0;
  std::size_t allocations_ = 0;
  std::vector<std::unique_ptr<unsigned char[], Free>> chunks_;
  std::vector<Dtor> dtors_;
};

/// Fixed-capacity contiguous emplace-only container for non-movable types.
///
/// std::vector cannot hold engine components: they pin their addresses at
/// registration (the engine and wake plumbing keep raw pointers), so any
/// reallocation or move is a use-after-free. std::deque keeps addresses
/// stable but scatters elements across map nodes. PinnedVector reserves its
/// full capacity once — from an Arena when given one, from the heap
/// otherwise — then only ever constructs in place.
///
/// Elements are destroyed (in reverse) by ~PinnedVector, so a PinnedVector
/// whose storage lives in an Arena must itself be destroyed before that
/// Arena — declare arenas first in the owning class.
template <typename T>
class PinnedVector {
 public:
  PinnedVector() = default;
  PinnedVector(const PinnedVector&) = delete;
  PinnedVector& operator=(const PinnedVector&) = delete;

  PinnedVector(PinnedVector&& other) noexcept { steal(other); }
  PinnedVector& operator=(PinnedVector&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  ~PinnedVector() { destroy(); }

  /// Allocate storage for exactly @p capacity elements. Must be called once,
  /// before any emplace_back; capacity 0 is a no-op.
  void reserve_exact(std::size_t capacity, Arena* arena = nullptr) {
    MEMPOOL_CHECK_MSG(data_ == nullptr && size_ == 0,
                      "PinnedVector::reserve_exact called twice");
    if (capacity == 0) return;
    if (arena != nullptr) {
      data_ = static_cast<T*>(arena->allocate(sizeof(T) * capacity, alignof(T)));
      heap_owned_ = false;
    } else {
      data_ = static_cast<T*>(::operator new(sizeof(T) * capacity,
                                             std::align_val_t(alignof(T))));
      heap_owned_ = true;
    }
    capacity_ = capacity;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    MEMPOOL_CHECK_MSG(size_ < capacity_,
                      "PinnedVector overflow: capacity " << capacity_);
    T* obj = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

 private:
  void destroy() {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
    if (heap_owned_ && data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = nullptr;
    size_ = capacity_ = 0;
    heap_owned_ = false;
  }

  void steal(PinnedVector& other) {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    heap_owned_ = other.heap_owned_;
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
    other.heap_owned_ = false;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  bool heap_owned_ = false;
};

}  // namespace mempool
