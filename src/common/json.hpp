#pragma once
// Minimal self-contained JSON value: enough to emit machine-readable bench
// results (`*.results.json`) and read them back for round-trip checks and
// trajectory tooling. Objects preserve insertion order so emitted files are
// stable and diffable; numbers are stored as double (plus an exact int64
// side-channel so cycle counts survive a round trip bit-exactly).
//
// Deliberately not a general-purpose JSON library: no comments, no \u escapes
// beyond pass-through ASCII, no streaming. Parse errors throw CheckError.

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace mempool {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}     // NOLINT
  Json(unsigned v) : type_(Type::kInt), int_(v) {}               // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}                // NOLINT
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {
    // Storage is int64; a value above INT64_MAX would serialize negative and
    // corrupt the round trip, so reject it loudly at construction.
    MEMPOOL_CHECK_MSG(v <= static_cast<uint64_t>(
                               std::numeric_limits<int64_t>::max()),
                      "JSON integer " << v << " exceeds int64 range");
  }
  Json(double v) : type_(Type::kDouble), double_(v) {}           // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw CheckError on type mismatch.
  bool as_bool() const;
  int64_t as_int() const;     ///< Exact for kInt; kDouble must be integral.
  uint64_t as_uint() const;
  double as_double() const;   ///< Valid for kInt and kDouble.
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  // --- array building -------------------------------------------------------
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  // --- object building ------------------------------------------------------
  /// Insert or overwrite member @p key (insertion order preserved).
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  /// Member lookup; throws CheckError when absent.
  const Json& at(const std::string& key) const;
  /// Member lookup with fallback. Returns by value: callers routinely pass a
  /// temporary fallback, which a reference return would leave dangling.
  Json get(const std::string& key, const Json& fallback) const;

  /// Deep structural equality: same type and same value (kInt and kDouble
  /// never compare equal, even for the same numeric value — serialization
  /// would differ). Object members must match in the same insertion order.
  bool operator==(const Json& other) const;

  /// Serialize. @p indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mempool
