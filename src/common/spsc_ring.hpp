#pragma once
// Cache-line-padded single-producer/single-consumer ring.
//
// Carries cross-shard commit hand-offs in the sharded engine: during the
// commit phase, producer shard s pushes boundary buffers destined for
// consumer shard d into ring (s,d); shard d drains rings in ascending
// producer order, which preserves the deterministic drain order the sharded
// bit-identity proof depends on (see README "Engine internals").
//
// Lock-free with acquire/release only — no CAS, no fences on the fast path.
// The producer owns tail_, the consumer owns head_; each side keeps a
// relaxed-loaded cache of the other side's index and only re-reads it (with
// acquire) when the cached value says full/empty. Indices are monotonically
// increasing and masked on access, so full/empty never alias.
//
// Capacity is fixed at init() — rings are sized at elaboration from the DRC
// D4 shard-boundary registry, so a push can only fail on a model bug.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/check.hpp"

namespace mempool {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing hands off raw values between threads");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;
  SpscRing(SpscRing&&) = delete;
  SpscRing& operator=(SpscRing&&) = delete;

  /// Allocate storage for at least @p min_capacity elements (rounded up to a
  /// power of two, minimum 2). Not thread-safe; call during elaboration.
  void init(std::size_t min_capacity) {
    MEMPOOL_CHECK_MSG(buf_ == nullptr, "SpscRing::init called twice");
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    buf_ = std::make_unique<T[]>(cap);
    mask_ = cap - 1;
  }

  bool initialized() const { return buf_ != nullptr; }
  std::size_t capacity() const { return buf_ ? mask_ + 1 : 0; }

  /// Producer side. Returns false when full.
  bool try_push(const T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    buf_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T* out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    *out = buf_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot of the element count. Exact only when both sides are quiesced
  /// (e.g. at the cycle barrier); used for asserts and stats.
  std::size_t size_unsync() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  // Shared, read-mostly after init.
  std::unique_ptr<T[]> buf_;
  std::size_t mask_ = 0;

  // Producer line: tail_ plus the producer's private cache of head_.
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;

  // Consumer line: head_ plus the consumer's private cache of tail_.
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

// The producer-owned and consumer-owned control words must sit on distinct
// cache lines or the two sides false-share every push/pop.
static_assert(alignof(SpscRing<void*>) == kCacheLineBytes);
static_assert(sizeof(SpscRing<void*>) >= 3 * kCacheLineBytes);

}  // namespace mempool
