#include "common/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace mempool {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MEMPOOL_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MEMPOOL_CHECK_MSG(cells.size() == header_.size(),
                    "row has " << cells.size() << " cells, header has "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(w[c])) << r[c] << ' ';
    }
    os << "|\n";
  };
  auto print_sep = [&] {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << '+' << std::string(w[c] + 2, '-');
    }
    os << "+\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& r : rows_) print_row(r);
  print_sep();
}

void Table::print_csv(std::ostream& os) const {
  auto join = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  join(header_);
  for (const auto& r : rows_) join(r);
}

Json Table::to_json() const {
  Json arr = Json::array();
  for (const auto& r : rows_) {
    Json row = Json::object();
    for (std::size_t c = 0; c < r.size(); ++c) row.set(header_[c], r[c]);
    arr.push_back(std::move(row));
  }
  return arr;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace mempool
