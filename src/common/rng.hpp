#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// The simulator must be bit-reproducible across platforms and standard-library
// versions, so we do not use <random> distributions in the hot path; all
// sampling is implemented here from raw 64-bit draws.

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace mempool {

/// SplitMix64 step (Steele, Lea & Flood; public-domain algorithm): advance by
/// the golden-gamma increment and finalize with the avalanche mix. Used to
/// expand single seeds into full generator states and to derive decorrelated
/// per-stream seeds from structured (seed, stream-id) inputs — the
/// finalization destroys any arithmetic relation between nearby inputs.
constexpr uint64_t splitmix64(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — public-domain algorithm, reimplemented.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(uint64_t seed) {
    for (auto& w : s_) {
      w = splitmix64(seed);
      seed += 0x9E3779B97F4A7C15ull;
    }
  }

  /// Uniform 64-bit draw.
  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) (n > 0), using Lemire's multiply-shift method.
  uint64_t next_below(uint64_t n) {
    MEMPOOL_CHECK(n > 0);
    // 128-bit multiply keeps bias negligible for simulator purposes.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * static_cast<__uint128_t>(n)) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability @p p.
  bool next_bool(double p) { return next_double() < p; }

  /// Checkpoint access to the raw xoshiro state: save/restore the four state
  /// words so a restored stream continues with the exact draw sequence the
  /// uninterrupted one would have produced.
  void save_state(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void load_state(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

  /// Poisson-distributed sample with mean @p lambda (Knuth's method; the
  /// injected loads used in the paper are <= 1 request/core/cycle, so the
  /// simple algorithm is both exact and fast).
  uint32_t next_poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    const double l = std::exp(-lambda);
    uint32_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > l);
    return k - 1;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4]{};
};

}  // namespace mempool
