#pragma once
// Plain-text table / CSV emission for the benchmark harnesses. Every bench
// binary prints the same rows/series the paper reports; this utility keeps
// their formatting uniform.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mempool {

/// A simple column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; the number of cells must match the header.
  void add_row(std::vector<std::string> cells);

  /// Format a double with @p precision digits after the decimal point.
  static std::string num(double v, int precision = 3);

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (comma-separated, no quoting — cells must be simple).
  void print_csv(std::ostream& os) const;

  /// Render as a JSON array of objects keyed by the header cells; cell values
  /// stay strings (the table stores formatted text, not raw numbers).
  Json to_json() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a visually distinct section banner for bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace mempool
