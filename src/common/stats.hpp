#pragma once
// Streaming statistics and histograms used by the network monitors and the
// benchmark harnesses.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mempool {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void reset();

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// {"count":N,"mean":..,"stddev":..,"min":..,"max":..} for results files.
  Json to_json() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram over [0, bucket_width * num_buckets), with an
/// overflow bucket. Used for request-latency distributions.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);
  void reset();

  /// Fold @p other (same bucket width and count) into this histogram; counts
  /// are integers, so the merge is exact and order-free.
  void absorb(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t overflow() const { return overflow_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  double bucket_width() const { return width_; }

  /// Value below which @p q (in [0,1]) of the samples fall, linear within a
  /// bucket; overflow samples count at the top edge.
  double quantile(double q) const;

  /// Checkpoint restore: overwrite the counts wholesale (geometry must
  /// match). Counts are integers, so a restored histogram is exactly the
  /// saved one.
  void restore(const std::vector<uint64_t>& buckets, uint64_t count,
               uint64_t overflow);

  /// {"bucket_width":w,"counts":[...],"overflow":N}; trailing zero buckets
  /// are trimmed to keep results files small.
  Json to_json() const;

 private:
  double width_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace mempool
