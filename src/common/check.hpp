#pragma once
// Always-on invariant checking for library construction and configuration.
//
// MEMPOOL_CHECK is used to validate user-provided configuration and internal
// invariants whose violation indicates a programming error. It is kept enabled
// in release builds: a cycle-level simulator that silently continues after an
// invariant break produces wrong performance numbers, which is worse than
// aborting.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mempool {

/// Exception thrown when a MEMPOOL_CHECK fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "MEMPOOL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mempool

#define MEMPOOL_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) ::mempool::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MEMPOOL_CHECK_MSG(expr, msg)                                  \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg; /* NOLINT */                                        \
      ::mempool::detail::check_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                 \
  } while (false)
