#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mempool {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0) {
  MEMPOOL_CHECK(bucket_width > 0.0);
  MEMPOOL_CHECK(num_buckets > 0);
}

void Histogram::add(double x) {
  ++count_;
  if (x < 0) x = 0;
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  overflow_ = 0;
}

void Histogram::absorb(const Histogram& other) {
  MEMPOOL_CHECK_MSG(width_ == other.width_ &&
                        buckets_.size() == other.buckets_.size(),
                    "absorbing a histogram with a different shape");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
}

void Histogram::restore(const std::vector<uint64_t>& buckets, uint64_t count,
                        uint64_t overflow) {
  MEMPOOL_CHECK_MSG(buckets.size() == buckets_.size(),
                    "restoring a histogram with a different shape ("
                        << buckets.size() << " buckets into "
                        << buckets_.size() << ")");
  buckets_ = buckets;
  count_ = count;
  overflow_ = overflow;
}

Json RunningStat::to_json() const {
  Json j = Json::object();
  j.set("count", n_);
  j.set("mean", mean());
  j.set("stddev", stddev());
  j.set("min", min());
  j.set("max", max());
  return j;
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j.set("bucket_width", width_);
  std::size_t last = buckets_.size();
  while (last > 0 && buckets_[last - 1] == 0) --last;
  Json counts = Json::array();
  for (std::size_t i = 0; i < last; ++i) counts.push_back(buckets_[i]);
  j.set("counts", std::move(counts));
  j.set("overflow", overflow_);
  return j;
}

double Histogram::quantile(double q) const {
  MEMPOOL_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double frac =
          buckets_[i] ? (target - cum) / static_cast<double>(buckets_[i]) : 0.0;
      return (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return width_ * static_cast<double>(buckets_.size());
}

}  // namespace mempool
