#pragma once
// Fixed-point helpers shared by the DCT kernel (RV32IM has no FPU in the
// MemPool Snitch configuration) and its golden model. Q-format: Qm.f with
// f fractional bits in an int32.

#include <cstdint>

namespace mempool {

/// Convert a double to Q-format with @p frac_bits fractional bits
/// (round-to-nearest).
constexpr int32_t to_fixed(double v, unsigned frac_bits) {
  const double scaled = v * static_cast<double>(1u << frac_bits);
  return static_cast<int32_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
}

/// Convert Q-format back to double.
constexpr double from_fixed(int32_t v, unsigned frac_bits) {
  return static_cast<double>(v) / static_cast<double>(1u << frac_bits);
}

/// Fixed-point multiply with truncation toward zero of the lower bits —
/// matches the RV32IM sequence (mul + mulh + shift composition) the DCT
/// kernel uses, so the golden model is bit-exact with the simulated kernel.
constexpr int32_t fx_mul(int32_t a, int32_t b, unsigned frac_bits) {
  const int64_t p = static_cast<int64_t>(a) * static_cast<int64_t>(b);
  return static_cast<int32_t>(p >> frac_bits);
}

}  // namespace mempool
