#pragma once
// Minimal leveled logging. The simulator is library-first: logging defaults to
// warnings only, and tests/benches can raise verbosity.

#include <sstream>
#include <string>

namespace mempool {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold (messages above this level are dropped).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace mempool

#define MEMPOOL_LOG(level, expr)                                     \
  do {                                                               \
    if (static_cast<int>(level) <= static_cast<int>(::mempool::log_level())) { \
      std::ostringstream os_;                                        \
      os_ << expr; /* NOLINT */                                      \
      ::mempool::detail::log_emit(level, os_.str());                 \
    }                                                                \
  } while (false)

#define MEMPOOL_LOG_INFO(expr) MEMPOOL_LOG(::mempool::LogLevel::kInfo, expr)
#define MEMPOOL_LOG_WARN(expr) MEMPOOL_LOG(::mempool::LogLevel::kWarn, expr)
#define MEMPOOL_LOG_DEBUG(expr) MEMPOOL_LOG(::mempool::LogLevel::kDebug, expr)
