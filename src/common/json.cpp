#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace mempool {

bool Json::as_bool() const {
  MEMPOOL_CHECK_MSG(type_ == Type::kBool, "JSON value is not a bool");
  return bool_;
}

int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  MEMPOOL_CHECK_MSG(type_ == Type::kDouble && double_ == std::floor(double_),
                    "JSON value is not an integer");
  // 2^63 is exactly representable as a double; values at or beyond it (or
  // below -2^63) would make the cast undefined behavior.
  MEMPOOL_CHECK_MSG(double_ >= -9223372036854775808.0 &&
                        double_ < 9223372036854775808.0,
                    "JSON number " << double_ << " exceeds int64 range");
  return static_cast<int64_t>(double_);
}

uint64_t Json::as_uint() const {
  const int64_t v = as_int();
  MEMPOOL_CHECK_MSG(v >= 0, "JSON integer is negative");
  return static_cast<uint64_t>(v);
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  MEMPOOL_CHECK_MSG(type_ == Type::kDouble, "JSON value is not a number");
  return double_;
}

const std::string& Json::as_string() const {
  MEMPOOL_CHECK_MSG(type_ == Type::kString, "JSON value is not a string");
  return string_;
}

const Json::Array& Json::items() const {
  MEMPOOL_CHECK_MSG(type_ == Type::kArray, "JSON value is not an array");
  return array_;
}

const Json::Object& Json::members() const {
  MEMPOOL_CHECK_MSG(type_ == Type::kObject, "JSON value is not an object");
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

void Json::push_back(Json v) {
  MEMPOOL_CHECK_MSG(type_ == Type::kArray, "push_back on non-array JSON");
  array_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  MEMPOOL_CHECK_MSG(false, "size() on non-container JSON");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  MEMPOOL_CHECK_MSG(type_ == Type::kArray && i < array_.size(),
                    "JSON array index " << i << " out of range");
  return array_[i];
}

void Json::set(const std::string& key, Json v) {
  MEMPOOL_CHECK_MSG(type_ == Type::kObject, "set() on non-object JSON");
  for (auto& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& m : object_)
    if (m.first == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  MEMPOOL_CHECK_MSG(type_ == Type::kObject, "at(key) on non-object JSON");
  for (const auto& m : object_)
    if (m.first == key) return m.second;
  MEMPOOL_CHECK_MSG(false, "JSON object has no member '" << key << "'");
  static const Json kNull;
  return kNull;
}

Json Json::get(const std::string& key, const Json& fallback) const {
  if (type_ == Type::kObject)
    for (const auto& m : object_)
      if (m.first == key) return m.second;
  return fallback;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest representation that round-trips a double exactly.
void format_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; emit null.
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    char shorter[40];
    for (int prec = 1; prec < 17; ++prec) {
      std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) {
        out += shorter;
        return;
      }
    }
  }
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: format_double(out, double_); break;
    case Type::kString: escape_string(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        escape_string(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the text with a cursor.
// ---------------------------------------------------------------------------
namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    MEMPOOL_CHECK_MSG(false, "JSON parse error at offset " << pos << ": "
                                                           << what);
    std::abort();  // unreachable; MEMPOOL_CHECK_MSG throws
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      std::string msg = "expected '";
      msg += c;
      msg += '\'';
      fail(msg);
    }
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text.compare(pos, n, lit) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xC0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    const std::string tok = text.substr(start, pos - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return Json(static_cast<int64_t>(v));
      // Fall through to double on int64 overflow.
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') fail("bad number");
    return Json(d);
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos;
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') { ++pos; return obj; }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          obj.set(key, parse_value());
          skip_ws();
          if (peek() == ',') { ++pos; continue; }
          expect('}');
          return obj;
        }
      }
      case '[': {
        ++pos;
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') { ++pos; return arr; }
        while (true) {
          arr.push_back(parse_value());
          skip_ws();
          if (peek() == ',') { ++pos; continue; }
          expect(']');
          return arr;
        }
      }
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value();
  p.skip_ws();
  MEMPOOL_CHECK_MSG(p.pos == text.size(),
                    "JSON parse error: trailing characters at offset " << p.pos);
  return v;
}

}  // namespace mempool
