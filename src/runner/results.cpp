#include "runner/results.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"

namespace mempool::runner {

Json sweep_to_json(const SweepResult& result) {
  MEMPOOL_CHECK(result.configs.size() == result.points.size());
  Json root = Json::object();
  root.set("schema", "mempool.sweep.v3");
  root.set("threads", result.threads);
  root.set("wall_seconds", result.wall_seconds);
  Json points = Json::array();
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const TrafficExperimentConfig& cfg = result.configs[i];
    const TrafficPoint& p = result.points[i];
    Json rec = Json::object();
    // v2: the topology is a self-describing {name, params} spec, so plugin
    // parameters survive the round trip verbatim. v3 mirrors it for the
    // memory system.
    Json topo = Json::object();
    topo.set("name", cfg.cluster.topology.name);
    Json params = Json::object();
    for (const auto& [k, v] : cfg.cluster.topology.params) params.set(k, v);
    topo.set("params", std::move(params));
    rec.set("topology", std::move(topo));
    Json mem = Json::object();
    mem.set("name", cfg.cluster.memory.name);
    Json mem_params = Json::object();
    for (const auto& [k, v] : cfg.cluster.memory.params) mem_params.set(k, v);
    mem.set("params", std::move(mem_params));
    rec.set("memory", std::move(mem));
    rec.set("scrambling", cfg.cluster.scrambling);
    rec.set("num_tiles", cfg.cluster.num_tiles);
    rec.set("cores_per_tile", cfg.cluster.cores_per_tile);
    rec.set("banks_per_tile", cfg.cluster.banks_per_tile);
    rec.set("bank_bytes", cfg.cluster.bank_bytes);
    rec.set("seq_region_bytes", cfg.cluster.seq_region_bytes);
    rec.set("num_groups", cfg.cluster.num_groups);
    rec.set("lambda", cfg.lambda);
    rec.set("p_local", cfg.p_local_seq);
    rec.set("seed", cfg.seed);
    rec.set("engine", engine_mode_name(cfg.engine));
    if (cfg.engine == EngineMode::kSharded) {
      rec.set("sim_threads", static_cast<uint64_t>(cfg.sim_threads));
    }
    rec.set("warmup_cycles", cfg.warmup_cycles);
    rec.set("measure_cycles", cfg.measure_cycles);
    rec.set("drain_cycles", cfg.drain_cycles);
    rec.set("offered", p.offered);
    rec.set("generated", p.generated);
    rec.set("accepted", p.accepted);
    rec.set("avg_latency", p.avg_latency);
    rec.set("p95_latency", p.p95_latency);
    rec.set("max_latency", p.max_latency);
    rec.set("completed", p.completed);
    points.push_back(std::move(rec));
  }
  root.set("points", std::move(points));
  return root;
}

SweepResult sweep_from_json(const Json& j) {
  const std::string schema = j.get("schema", Json("")).as_string();
  MEMPOOL_CHECK_MSG(schema == "mempool.sweep.v3" ||
                        schema == "mempool.sweep.v2" ||
                        schema == "mempool.sweep.v1",
                    "not a mempool.sweep.v1/v2/v3 document (schema '"
                        << schema << "')");
  SweepResult result;
  result.threads = static_cast<unsigned>(j.at("threads").as_uint());
  result.wall_seconds = j.at("wall_seconds").as_double();
  for (const Json& rec : j.at("points").items()) {
    TrafficExperimentConfig cfg;
    // v1 wrote the topology as a bare name string; v2 as {name, params}.
    const Json& topo = rec.at("topology");
    TopologySpec spec;
    if (topo.type() == Json::Type::kString) {
      spec.name = topo.as_string();
    } else {
      spec.name = topo.at("name").as_string();
      const Json params = topo.get("params", Json::object());
      for (const auto& [k, v] : params.members()) {
        spec.params[k] = v;
      }
    }
    // Resolve against the registry here so a stale document fails with the
    // list of available plugins instead of deep in cluster construction.
    MEMPOOL_CHECK_MSG(FabricRegistry::find(spec.name) != nullptr,
                      "unknown topology '" << spec.name << "'; available: "
                                           << FabricRegistry::available());
    cfg.cluster.topology = std::move(spec);
    // v3 adds the memory system as a {name, params} spec; v1/v2 documents
    // predate the memory registry and mean the default tcdm.
    if (const Json mem = rec.get("memory", Json());
        mem.type() == Json::Type::kObject) {
      MemorySpec mspec;
      mspec.name = mem.at("name").as_string();
      const Json mparams = mem.get("params", Json::object());
      for (const auto& [k, v] : mparams.members()) {
        mspec.params[k] = v;
      }
      MEMPOOL_CHECK_MSG(MemoryRegistry::find(mspec.name) != nullptr,
                        "unknown memory system '"
                            << mspec.name << "'; available: "
                            << MemoryRegistry::available());
      cfg.cluster.memory = std::move(mspec);
    }
    cfg.cluster.scrambling = rec.at("scrambling").as_bool();
    cfg.cluster.num_tiles =
        static_cast<uint32_t>(rec.at("num_tiles").as_uint());
    cfg.cluster.cores_per_tile =
        static_cast<uint32_t>(rec.at("cores_per_tile").as_uint());
    cfg.cluster.banks_per_tile =
        static_cast<uint32_t>(rec.at("banks_per_tile").as_uint());
    cfg.cluster.bank_bytes =
        static_cast<uint32_t>(rec.at("bank_bytes").as_uint());
    cfg.cluster.seq_region_bytes =
        static_cast<uint32_t>(rec.at("seq_region_bytes").as_uint());
    cfg.cluster.num_groups =
        static_cast<uint32_t>(rec.at("num_groups").as_uint());
    // Traffic experiments replace the cores with generators, so the CoreConfig
    // and ICacheConfig timing parameters do not influence the results and are
    // not part of the schema; everything that does influence them is, and an
    // inconsistent record must fail here, not deep in cluster construction.
    cfg.cluster.validate();
    cfg.lambda = rec.at("lambda").as_double();
    cfg.p_local_seq = rec.at("p_local").as_double();
    cfg.seed = rec.at("seed").as_uint();
    // Optional (absent in pre-scheduler documents): which engine produced the
    // point. All engines produce bit-identical physics; recorded for
    // provenance.
    const std::string engine = rec.get("engine", Json("active")).as_string();
    MEMPOOL_CHECK_MSG(engine_mode_from_name(engine, &cfg.engine),
                      "unknown engine '" << engine << "'; available: "
                                         << engine_mode_available());
    cfg.sim_threads = static_cast<unsigned>(
        rec.get("sim_threads", Json(uint64_t{1})).as_uint());
    cfg.warmup_cycles = rec.at("warmup_cycles").as_uint();
    cfg.measure_cycles = rec.at("measure_cycles").as_uint();
    cfg.drain_cycles = rec.at("drain_cycles").as_uint();
    result.configs.push_back(cfg);

    TrafficPoint p;
    p.offered = rec.at("offered").as_double();
    p.generated = rec.at("generated").as_double();
    p.accepted = rec.at("accepted").as_double();
    p.avg_latency = rec.at("avg_latency").as_double();
    p.p95_latency = rec.at("p95_latency").as_double();
    p.max_latency = rec.at("max_latency").as_double();
    p.completed = rec.at("completed").as_uint();
    result.points.push_back(p);
  }
  return result;
}

SpeedupSummary speedup_from_json(const Json& j) {
  SpeedupSummary s;
  s.schema = j.get("schema", Json("")).as_string();
  MEMPOOL_CHECK_MSG(s.schema == "mempool.speedup.v1" ||
                        s.schema == "mempool.speedup.v2" ||
                        s.schema == "mempool.speedup.v3",
                    "not a mempool.speedup.v1/v2/v3 document (schema '"
                        << s.schema << "')");
  s.aggregate_speedup = j.at("aggregate_speedup").as_double();
  s.min_speedup = j.at("min_speedup").as_double();
  if (s.schema != "mempool.speedup.v1") {
    s.aggregate_sharded_speedup = j.at("aggregate_sharded_speedup").as_double();
  }
  if (s.schema == "mempool.speedup.v3") {
    const Json& paper = j.at("paper_point");
    s.paper_cycles_per_second = paper.at("cycles_per_second").as_double();
    s.paper_cycles_per_second_per_shard =
        paper.at("cycles_per_second_per_shard").as_double();
    s.paper_sharded_1t_cycles_per_second =
        paper.at("sharded_1t_cycles_per_second").as_double();
  }
  s.num_points = j.at("points").items().size();
  return s;
}

Json bench_envelope(const std::string& bench, unsigned threads,
                    double wall_seconds, Json results) {
  Json root = Json::object();
  root.set("schema", "mempool.bench.v1");
  root.set("bench", bench);
  root.set("threads", threads);
  root.set("wall_seconds", wall_seconds);
  root.set("results", std::move(results));
  return root;
}

void write_json_file(const std::string& path, const Json& j) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MEMPOOL_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  os << j.dump(2) << '\n';
  os.flush();
  MEMPOOL_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

Json read_json_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MEMPOOL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace mempool::runner
