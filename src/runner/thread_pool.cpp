#include "runner/thread_pool.hpp"

#include <cstdlib>

#include "runner/spin.hpp"

namespace mempool::runner {

namespace {
// Which worker of which pool the current thread is, so nested submit() can
// push to the local deque. A thread belongs to at most one pool.
thread_local ThreadPool* t_pool = nullptr;
thread_local std::size_t t_index = 0;

// Bounded idle spin before a worker parks: long enough (a few microseconds)
// to catch the next barrier round of a busy sharded run without a futex
// round trip, short enough that an idle pool goes to sleep immediately on
// any human timescale.
constexpr int kIdleSpinBudget = 2048;
}  // namespace

unsigned ThreadPool::default_threads() {
  // getenv races with setenv, but nothing in this process ever calls setenv:
  // the env is read-only configuration established before main().
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("MEMPOOL_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_threads();
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] { return pending_ == 0; });
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    // pending_ goes up BEFORE the task becomes stealable: a worker that pops
    // and finishes it immediately must never drive pending_ below the count
    // of submitted-but-unfinished tasks (wait_idle would report idle early).
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
    if (t_pool == this) {
      target = t_index;  // worker thread: keep the work local
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->deque.push_front(std::move(task));
  }
  work_epoch_.fetch_add(1, std::memory_order_release);  // wakes spinners
  {
    // Notify under mu_, after the push: a worker that found the deques empty
    // holds mu_ until it blocks on cv_work_, so this notification cannot
    // slip into the gap between its scan and its wait.
    std::lock_guard<std::mutex> lock(mu_);
    cv_work_.notify_one();
  }
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own deque first (front = most recently pushed).
  {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      task = std::move(w.deque.front());
      w.deque.pop_front();
      return true;
    }
  }
  // Steal from the back of the other deques, starting after self so the
  // stealing pressure spreads instead of piling onto worker 0.
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& v = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(v.mu);
    if (!v.deque.empty()) {
      task = std::move(v.deque.back());
      v.deque.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(std::function<void()>& task) {
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  task = nullptr;  // release captures before signaling idle
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (error && !first_error_) first_error_ = error;
    --pending_;
    if (pending_ == 0) cv_idle_.notify_all();
  }
}

bool ThreadPool::any_queued() {
  for (auto& w : queues_) {
    std::lock_guard<std::mutex> lock(w->mu);
    if (!w->deque.empty()) return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_pool = this;
  t_index = self;
  std::function<void()> task;
  while (true) {
    if (try_pop(self, task)) {
      run_task(task);
      continue;
    }
    // Bounded spin: watch the submit epoch (one cheap shared load per
    // iteration, no queue locks) for a few microseconds before paying for a
    // park — barrier workloads re-submit on exactly this timescale.
    {
      // (stop_ is checked under mu_ below; the spin just expires first.)
      const uint64_t seen = work_epoch_.load(std::memory_order_acquire);
      bool woke = false;
      for (int spins = 0; spins < kIdleSpinBudget; ++spins) {
        if (work_epoch_.load(std::memory_order_acquire) != seen) {
          woke = true;
          break;
        }
        cpu_pause();
      }
      if (woke) continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    // Re-scan while holding mu_: submit() publishes the task before taking
    // mu_ to notify, so either we see the task here or the notify happens
    // after we block — an untimed wait cannot miss work.
    if (any_queued()) continue;
    park_events_.fetch_add(1, std::memory_order_relaxed);
    parked_.fetch_add(1, std::memory_order_release);
    cv_work_.wait(lock);
    parked_.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace mempool::runner
