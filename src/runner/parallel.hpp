#pragma once
// Deterministic fork-join helpers on top of ThreadPool.
//
// Results are keyed by item index, never by completion order, so the output
// of run_indexed() is bit-identical for any thread count or schedule as long
// as the per-item function itself is deterministic (which run_traffic_point
// is: every simulation owns its Engine/Cluster/RNG state).

#include <cstddef>
#include <exception>
#include <functional>
#include <type_traits>
#include <vector>

#include "runner/thread_pool.hpp"

namespace mempool::runner {

/// Run fn(0..n-1) on the pool; block until all complete. When items throw,
/// every non-throwing item still runs to completion and the exception of the
/// *lowest-indexed* failing item is rethrown — deterministic regardless of
/// which worker hit it first.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  const std::function<void(std::size_t)>& on_done = nullptr) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (on_done) on_done(i);
    });
  }
  pool.wait_idle();  // per-item exceptions were captured above, not by the pool
  for (std::size_t i = 0; i < n; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
}

/// Map fn over [0, n) in parallel and collect the results in index order.
template <typename Fn>
auto run_indexed(ThreadPool& pool, std::size_t n, Fn&& fn,
                 const std::function<void(std::size_t)>& on_done = nullptr)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "run_indexed result type must be default constructible");
  std::vector<R> out(n);
  parallel_for(
      pool, n, [&](std::size_t i) { out[i] = fn(i); }, on_done);
  return out;
}

}  // namespace mempool::runner
