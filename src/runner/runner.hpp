#pragma once
// Parallel experiment runner: shards the independent simulation points of a
// SweepSpec (or any explicit config list) across host cores with the
// work-stealing ThreadPool.
//
// Determinism contract: run_traffic_point owns all of its mutable state
// (Engine, Cluster, generators, per-point RNG streams keyed by cfg.seed), so
// the result vector — keyed by point index, not completion order — is
// bit-identical for every thread count and schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "traffic/experiment.hpp"

namespace mempool::runner {

struct RunnerOptions {
  /// Worker threads; 0 = MEMPOOL_THREADS env var / hardware concurrency.
  unsigned threads = 0;
  /// Print one '.' to stderr per completed point (the classic bench ticker).
  bool progress = false;
};

struct SweepResult {
  std::vector<TrafficExperimentConfig> configs;  ///< Expanded points, in order.
  std::vector<TrafficPoint> points;              ///< points[i] ≡ configs[i].
  unsigned threads = 1;      ///< Worker count actually used.
  double wall_seconds = 0;   ///< Wall-clock time of the parallel section.
};

/// Run every point of @p spec in parallel.
SweepResult run_sweep(const SweepSpec& spec, const RunnerOptions& opts = {});

/// Run an explicit config list in parallel (result order = input order).
SweepResult run_points(const std::vector<TrafficExperimentConfig>& configs,
                       const RunnerOptions& opts = {});

}  // namespace mempool::runner
