#pragma once
// ShardGang: the reusable cycle-barrier primitive behind the sharded engine.
//
// A gang is a crew of helper tasks parked on the ThreadPool plus the calling
// ("leader") thread. Every run(n, fn) is one barrier round: the leader
// publishes the work, everyone claims shard indices from a shared ticket
// until none remain, and run() returns only when all n invocations have
// completed — a full barrier, with all effects visible to the leader. The
// engine calls this twice per simulated cycle (evaluate, commit), millions
// of times per run, so a round must cost hundreds of nanoseconds, not a
// mutex convoy:
//
//   * the ticket packs (epoch, next-shard) into one 64-bit atomic; helpers
//     claim by CAS, so a laggard from the previous round can never steal or
//     skip a shard of the next one;
//   * helpers wait for the next epoch with a bounded spin and then *park* on
//     a condition variable — a gang stepping a mostly-idle cluster (the
//     engine evaluates light cycles inline without bumping the epoch) burns
//     one core, not sim-threads cores. The leader wakes parked helpers only
//     when the parked counter says someone is actually asleep, so the steady
//     busy state stays syscall-free.
//   * participation is *optional*: a helper that the pool has not scheduled
//     yet (or that another sweep point is hogging) simply never claims; the
//     leader completes the remaining shards itself. No configuration can
//     deadlock, and gangs sharing a pool with sweep-level parallelism
//     degrade to leader-only execution instead of wedging.
//
// Determinism: which thread runs a shard is irrelevant by construction (the
// engine's shards share no unsynchronized state), and run() is a barrier, so
// results are bit-identical for any helper count including zero.
//
// A thrown exception inside fn (e.g. a MEMPOOL_CHECK in a component) is
// captured, the round still completes (the failing shard counts as done),
// and run() rethrows the first error on the leader.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "sim/shard.hpp"

namespace mempool::runner {

class ThreadPool;

class ShardGang final : public ShardExecutor {
 public:
  /// @param pool    pool the helper tasks are submitted to (may be null).
  /// @param threads total desired participants including the leader; the
  ///                gang submits min(threads, pool workers + 1) - 1 helpers.
  ShardGang(ThreadPool* pool, unsigned threads);
  ~ShardGang() override;

  ShardGang(const ShardGang&) = delete;
  ShardGang& operator=(const ShardGang&) = delete;

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) override;
  unsigned threads() const override { return helpers_ + 1; }

  // --- introspection (tests) -------------------------------------------------
  /// Helpers currently parked on the condition variable (not spinning).
  unsigned parked_helpers() const;
  /// Total helper park events since construction.
  uint64_t park_events() const;

 private:
  struct State;
  static void helper_loop(const std::shared_ptr<State>& st);
  std::shared_ptr<State> st_;
  unsigned helpers_ = 0;
};

/// A gang plus the private pool its helpers live on, sized for stepping one
/// cluster: min(sim_threads, num_shards) participants including the caller.
/// Owns the destruction-order invariant (the gang joins its helpers before
/// the pool joins its workers) so call sites cannot get it subtly wrong.
/// executor() is null when one thread suffices — pass it to
/// Engine::set_sharded either way.
class ShardCrew {
 public:
  ShardCrew(unsigned sim_threads, uint32_t num_shards);
  ~ShardCrew();  // out of line: ThreadPool is only forward-declared here
  ShardExecutor* executor() { return gang_ ? gang_.get() : nullptr; }

 private:
  // pool_ before gang_: members destroy in reverse declaration order.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ShardGang> gang_;
};

}  // namespace mempool::runner
