#include "runner/sweep.hpp"

#include <sstream>

#include "common/check.hpp"

namespace mempool::runner {

namespace {
std::size_t axis(std::size_t n) { return n ? n : 1; }
}  // namespace

std::size_t SweepSpec::num_points() const {
  return axis(topologies.size()) * axis(memories.size()) *
         axis(p_locals.size()) * axis(lambdas.size()) * axis(seeds.size());
}

std::vector<serve::SimRequest> SweepSpec::expand_requests() const {
  std::vector<serve::SimRequest> out;
  out.reserve(num_points());
  const std::size_t nt = axis(topologies.size());
  const std::size_t nm = axis(memories.size());
  const std::size_t np = axis(p_locals.size());
  const std::size_t nl = axis(lambdas.size());
  const std::size_t ns = axis(seeds.size());
  for (std::size_t t = 0; t < nt; ++t) {
    TrafficExperimentConfig topo_cfg = base;
    if (!topologies.empty()) {
      if (paper_cluster) {
        topo_cfg.cluster =
            ClusterConfig::paper(topologies[t], base.cluster.scrambling);
        // The canonical configs carry the default memory system; the sweep's
        // memory selection (base or axis) is orthogonal to the topology.
        topo_cfg.cluster.memory = base.cluster.memory;
      } else {
        topo_cfg.cluster.topology = topologies[t];
      }
    }
    for (std::size_t m = 0; m < nm; ++m) {
      TrafficExperimentConfig mem_cfg = topo_cfg;
      if (!memories.empty()) mem_cfg.cluster.memory = memories[m];
      for (std::size_t p = 0; p < np; ++p) {
        for (std::size_t l = 0; l < nl; ++l) {
          for (std::size_t s = 0; s < ns; ++s) {
            TrafficExperimentConfig cfg = mem_cfg;
            if (!p_locals.empty()) cfg.p_local_seq = p_locals[p];
            if (!lambdas.empty()) cfg.lambda = lambdas[l];
            if (!seeds.empty()) cfg.seed = seeds[s];
            out.push_back(serve::SimRequest::from_config(cfg));
          }
        }
      }
    }
  }
  return out;
}

std::vector<TrafficExperimentConfig> SweepSpec::expand() const {
  std::vector<TrafficExperimentConfig> out;
  out.reserve(num_points());
  for (const serve::SimRequest& req : expand_requests()) {
    out.push_back(req.config);
  }
  return out;
}

std::string SweepSpec::point_label(std::size_t i) const {
  MEMPOOL_CHECK_MSG(i < num_points(), "sweep point index out of range");
  const std::size_t ns = axis(seeds.size());
  const std::size_t nl = axis(lambdas.size());
  const std::size_t np = axis(p_locals.size());
  const std::size_t nm = axis(memories.size());
  const std::size_t s = i % ns;
  const std::size_t l = (i / ns) % nl;
  const std::size_t p = (i / (ns * nl)) % np;
  const std::size_t m = (i / (ns * nl * np)) % nm;
  const std::size_t t = i / (ns * nl * np * nm);

  std::ostringstream os;
  os << (topologies.empty() ? base.cluster.topology.name
                            : topologies[t].name);
  if (!memories.empty()) os << " mem=" << memories[m].name;
  os << " λ=" << (lambdas.empty() ? base.lambda : lambdas[l]);
  os << " p=" << (p_locals.empty() ? base.p_local_seq : p_locals[p]);
  os << " seed=" << (seeds.empty() ? base.seed : seeds[s]);
  return os.str();
}

}  // namespace mempool::runner
