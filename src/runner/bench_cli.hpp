#pragma once
// Shared command-line handling for the bench/example harnesses:
//
//   --threads N         sweep worker threads — how many *points* run
//                       concurrently (default: MEMPOOL_THREADS env / all
//                       cores)
//   --sim-threads N     engine threads — how many shards of *one point's*
//                       cluster step concurrently (sharded engine only;
//                       default 1)
//   --engine MODE       active (default) | dense | sharded; all three are
//                       bit-identical, only wall-clock differs
//   --dense             legacy alias for --engine dense
//   --json PATH         results file path (default: <bench>.results.json)
//   --no-json           disable the results file
//   --quiet             suppress the stderr progress ticker
//   --topology NAME     select a registered fabric topology (benches that
//                       take one); unknown names fail with the list of
//                       registered plugins
//   --list-topologies   print the FabricRegistry and exit
//   --memory NAME       select a registered memory system (benches that take
//                       one); unknown names fail with the list of plugins
//   --list-memories     print the MemoryRegistry and exit
//   --list-engines      print the engine modes with one-line descriptions
//                       and exit; unknown --engine values fail with the same
//                       list
//   --drc               run the design-rule checker (verify/drc.hpp) over
//                       every registered topology x memory x engine
//                       combination at paper scale, write <bench>.drc.json
//                       (schema mempool.drc.v1), and exit 0 iff clean
//   --drc-out PATH      where --drc writes its report (default:
//                       <bench>.drc.json); order-independent with --drc
//   --stall-horizon N   arm the engine progress watchdog: if any non-empty
//                       buffer drains nothing for N consecutive cycles the
//                       run aborts with a mempool.liveness.v1 stall report
//                       instead of hanging (0 = disabled, the default)
//   --checkpoint-every N  (single-point benches) snapshot the engine every N
//                       simulated cycles into a mempool.ckpt.v1 file,
//                       written atomically so a kill mid-run leaves the last
//                       complete image behind (default: off)
//   --checkpoint-out PATH where --checkpoint-every writes its image
//                       (default: <bench>.ckpt)
//   --restore PATH      resume a single point from a mempool.ckpt.v1 image;
//                       the completed run is bit-identical to one that was
//                       never interrupted
//   --help              usage
//
// The two thread axes are deliberately distinct flags: --threads always
// means sweep-level parallelism (as it has since the runner landed) and
// --sim-threads always means engine-level parallelism. The historically
// ambiguous spellings people reach for (--engine-threads, --sim_threads,
// --threads=sim) are rejected with an error naming both flags instead of
// being silently misread.
//
// Recognized flags are removed from argv so benches with positional
// arguments (traffic_explorer) can parse the remainder untouched.

#include <cstdint>
#include <functional>
#include <string>

#include "common/json.hpp"
#include "core/cluster_config.hpp"
#include "runner/runner.hpp"
#include "sim/shard.hpp"
#include "traffic/experiment.hpp"

namespace mempool::runner {

struct BenchOptions {
  std::string bench_name;
  unsigned threads = 0;     ///< Sweep workers; 0 = ThreadPool::default_threads().
  std::string json_path;    ///< Empty = results file disabled.
  bool progress = true;
  /// --engine / --dense: which scheduler steps each simulation point.
  EngineMode engine = EngineMode::kActive;
  /// --sim-threads: engine threads per point (sharded engine only).
  unsigned sim_threads = 1;
  /// --topology NAME, validated against the FabricRegistry; empty = bench
  /// default. Benches that simulate a selectable topology honor this.
  std::string topology;
  /// --memory NAME, validated against the MemoryRegistry; empty = bench
  /// default (tcdm unless the bench is memory-specific).
  std::string memory;
  /// --stall-horizon N: progress-watchdog horizon in cycles; 0 = disabled.
  uint64_t stall_horizon = 0;
  /// --checkpoint-every N: snapshot period in cycles (single-point benches
  /// only); 0 = no periodic checkpointing.
  uint64_t checkpoint_every = 0;
  /// --checkpoint-out PATH: where the periodic image lands; empty =
  /// <bench>.ckpt.
  std::string checkpoint_out;
  /// --restore PATH: mempool.ckpt.v1 image to resume from; empty = cold.
  std::string restore_path;

  /// True when --checkpoint-every or --restore asked for the crash-safe
  /// single-point path (run_checkpointed_point) instead of the sweep runner.
  bool wants_checkpointing() const {
    return checkpoint_every != 0 || !restore_path.empty();
  }

  RunnerOptions runner() const { return {threads, progress}; }

  /// Apply the engine selection (and watchdog horizon) to an experiment
  /// config.
  void apply_engine(TrafficExperimentConfig* cfg) const {
    cfg->engine = engine;
    cfg->sim_threads = sim_threads;
    cfg->stall_horizon = stall_horizon;
  }
};

/// Resolve a topology name against the FabricRegistry; on an unknown name
/// prints "unknown topology 'X'; available: ..." to stderr and exits(2).
TopologySpec parse_topology_or_exit(const std::string& name);

/// Resolve a memory-system name against the MemoryRegistry; on an unknown
/// name prints "unknown memory system 'X'; available: ..." and exits(2).
MemorySpec parse_memory_or_exit(const std::string& name);

/// Parse and strip the common flags. @p argc/@p argv are compacted in place;
/// exits(0) on --help, exits(2) on a malformed flag. Benches whose topology
/// (memory system) set is selectable pass @p accepts_topology
/// (@p accepts_memory) = true; everywhere else the flag is rejected loudly
/// instead of being silently ignored. Likewise @p accepts_checkpoint gates
/// --checkpoint-every/--checkpoint-out/--restore: only benches that route a
/// single point through run_checkpointed_point accept them.
BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name,
                                 bool accepts_topology = false,
                                 bool accepts_memory = false,
                                 bool accepts_checkpoint = false);

/// Run one point honoring --checkpoint-every / --checkpoint-out / --restore:
/// periodic mempool.ckpt.v1 images are written atomically (tmp + rename) so
/// a crash at any moment leaves either the previous complete image or the
/// new one, never a torn file; --restore resumes from such an image and the
/// finished point is bit-identical to an uninterrupted run. Snapshots are
/// keyed by the bench name, so a fig5 image cannot resume a fig7 run. Exits
/// (2) with a message when the restore image is unreadable or corrupt.
TrafficPoint run_checkpointed_point(const BenchOptions& opts,
                                    const TrafficExperimentConfig& cfg,
                                    TrafficCounters* counters_out = nullptr);

/// Write the mempool.bench.v1 envelope to opts.json_path (no-op when the
/// results file is disabled); prints the path to stderr.
void write_bench_results(const BenchOptions& opts, unsigned threads,
                         double wall_seconds, Json results);

/// Run a bench's main body, presenting an Engine::set_stall_horizon abort
/// (LivenessError) as a structured CLI failure instead of std::terminate:
/// the watchdog message and the full mempool.liveness.v1 stall report go to
/// stderr and the process exits 3. Benches that honor --stall-horizon wrap
/// their main in this.
int guarded_bench_main(const std::string& bench_name,
                       const std::function<int()>& body);

}  // namespace mempool::runner
