#pragma once
// Shared command-line handling for the bench/example harnesses:
//
//   --threads N         worker threads (default: MEMPOOL_THREADS env / all
//                       cores)
//   --json PATH         results file path (default: <bench>.results.json)
//   --no-json           disable the results file
//   --quiet             suppress the stderr progress ticker
//   --dense             dense evaluate-everything engine (escape hatch;
//                       results are bit-identical to the default
//                       activity-driven engine)
//   --topology NAME     select a registered fabric topology (benches that
//                       take one); unknown names fail with the list of
//                       registered plugins
//   --list-topologies   print the FabricRegistry and exit
//   --help              usage
//
// Recognized flags are removed from argv so benches with positional
// arguments (traffic_explorer) can parse the remainder untouched.

#include <string>

#include "common/json.hpp"
#include "core/cluster_config.hpp"
#include "runner/runner.hpp"

namespace mempool::runner {

struct BenchOptions {
  std::string bench_name;
  unsigned threads = 0;     ///< 0 = ThreadPool::default_threads().
  std::string json_path;    ///< Empty = results file disabled.
  bool progress = true;
  bool dense = false;       ///< Dense engine fallback (--dense).
  /// --topology NAME, validated against the FabricRegistry; empty = bench
  /// default. Benches that simulate a selectable topology honor this.
  std::string topology;

  RunnerOptions runner() const { return {threads, progress}; }
};

/// Resolve a topology name against the FabricRegistry; on an unknown name
/// prints "unknown topology 'X'; available: ..." to stderr and exits(2).
TopologySpec parse_topology_or_exit(const std::string& name);

/// Parse and strip the common flags. @p argc/@p argv are compacted in place;
/// exits(0) on --help, exits(2) on a malformed flag. Benches whose topology
/// set is selectable pass @p accepts_topology = true; everywhere else
/// --topology is rejected loudly instead of being silently ignored.
BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name,
                                 bool accepts_topology = false);

/// Write the mempool.bench.v1 envelope to opts.json_path (no-op when the
/// results file is disabled); prints the path to stderr.
void write_bench_results(const BenchOptions& opts, unsigned threads,
                         double wall_seconds, Json results);

}  // namespace mempool::runner
