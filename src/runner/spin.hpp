#pragma once
// Shared spin-wait helper for the runner's waiters (ThreadPool idle workers,
// ShardGang epoch/completion waits). One home for the arch-conditional pause
// hint so a future port touches one line.

namespace mempool::runner {

/// One PAUSE-class instruction for spin loops.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  // Portable fallback: nothing; every caller bounds its spin anyway.
#endif
}

}  // namespace mempool::runner
