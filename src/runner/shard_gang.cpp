#include "runner/shard_gang.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"
#include "runner/spin.hpp"
#include "runner/thread_pool.hpp"

namespace mempool::runner {

namespace {

/// Spin iterations before a waiter parks (helpers) or yields (leader). At
/// ~1-3 ns per pause this is a few microseconds — comfortably longer than a
/// simulated cycle, so a busy gang never touches a futex, while an idle one
/// goes to sleep almost immediately on the wall-clock scale.
constexpr int kSpinBudget = 4096;

}  // namespace

struct ShardGang::State {
  // ticket: bits 63..32 = epoch of the current round, bits 31..0 = next
  // unclaimed shard index. Claiming CASes the whole word, so a claim is
  // always against the round it read — a stale helper can neither steal nor
  // skip work of a newer round.
  std::atomic<uint64_t> ticket{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> stop{false};

  // Round payload, written by the leader before the epoch release-store.
  // fn is only dereferenced after a successful claim — a CAS against a
  // ticket value in the leader's release sequence — so the plain pointer is
  // ordered; n is also read *before* claiming (the have-we-run-dry check),
  // where a straggler from the previous round may still be looking while the
  // leader publishes the next one. That read is validated by the CAS either
  // way, but it must be atomic (relaxed) to be a race-free look at possibly
  // stale data.
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<uint64_t> n{0};

  // First exception thrown by fn this round (leader rethrows).
  std::mutex err_mu;
  std::exception_ptr first_error;

  // Parking.
  std::mutex mu;
  std::condition_variable cv;        // helpers waiting for the next epoch
  std::condition_variable cv_done;   // leader waiting for round completion
  std::condition_variable cv_exit;   // destructor waiting for helpers
  std::atomic<unsigned> parked{0};
  std::atomic<uint64_t> park_events{0};
  unsigned live_helpers = 0;  // guarded by mu

  /// Claim and run shards of round @p epoch until none remain (or a newer
  /// round has started — its shards are claimed for *that* round's fn, which
  /// the acquire on the ticket has made visible).
  void work() {
    for (;;) {
      uint64_t t = ticket.load(std::memory_order_acquire);
      const auto s = static_cast<uint32_t>(t);
      if (s >= n.load(std::memory_order_relaxed)) return;
      if (!ticket.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        continue;
      }
      try {
        (*fn)(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      const uint64_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == n.load(std::memory_order_relaxed)) {
        // Last shard of the round: notify the (possibly parked) leader
        // *through the mutex*, unconditionally. A parked-flag fast path
        // would race: the leader's flag store and completion load can
        // reorder (StoreLoad) against this thread's increment and flag
        // load, letting both sides read stale values — the helper skips
        // the notify while the leader parks on a stale count, and the
        // simulation hangs. Locking orders the increment before the
        // leader's predicate re-check; one uncontended lock per round is
        // noise next to the shard work.
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
  }
};

ShardGang::ShardGang(ThreadPool* pool, unsigned threads)
    : st_(std::make_shared<State>()) {
  unsigned available = pool != nullptr ? pool->num_threads() : 0;
  helpers_ = threads > 1 ? std::min(threads - 1, available) : 0;
  for (unsigned h = 0; h < helpers_; ++h) {
    std::shared_ptr<State> st = st_;
    pool->submit([st] { helper_loop(st); });
  }
}

ShardGang::~ShardGang() {
  st_->stop.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(st_->mu);
  st_->cv.notify_all();
  // Wait only for helpers that already *started*; ones the pool never got
  // around to scheduling hold their own shared_ptr to the state and exit on
  // first sight of stop — blocking on them here could deadlock a gang whose
  // pool is busy with the very task that owns this gang.
  st_->cv_exit.wait(lock, [&] { return st_->live_helpers == 0; });
}

void ShardGang::run(std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  State& st = *st_;
  MEMPOOL_CHECK(n < (1ull << 32));
  if (n == 0) return;
  st.fn = &fn;
  st.n.store(n, std::memory_order_relaxed);
  st.completed.store(0, std::memory_order_relaxed);
  const uint64_t epoch = (st.ticket.load(std::memory_order_relaxed) >> 32) + 1;
  st.ticket.store(epoch << 32, std::memory_order_release);
  if (st.parked.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(st.mu);
    st.cv.notify_all();
  }

  st.work();  // the leader is a participant

  // Barrier: all n shards must have completed before we return. Spin first
  // (the straggler is typically mid-shard), then park on cv_done. No missed
  // wakeup: the finishing helper notifies under mu unconditionally, so
  // either this thread's locked predicate check already sees the final
  // count, or it blocks before the helper can acquire mu to notify.
  int spins = 0;
  while (st.completed.load(std::memory_order_acquire) < n) {
    if (++spins <= kSpinBudget) {
      cpu_pause();
      continue;
    }
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv_done.wait(lock, [&] {
      return st.completed.load(std::memory_order_acquire) >= n;
    });
  }

  if (st.first_error) {
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lock(st.err_mu);
      e = st.first_error;
      st.first_error = nullptr;
    }
    std::rethrow_exception(e);
  }
}

unsigned ShardGang::parked_helpers() const {
  return st_->parked.load(std::memory_order_acquire);
}

uint64_t ShardGang::park_events() const {
  return st_->park_events.load(std::memory_order_acquire);
}

ShardCrew::ShardCrew(unsigned sim_threads, uint32_t num_shards) {
  const unsigned want =
      std::min<unsigned>(std::max(1u, sim_threads), num_shards);
  if (want > 1) {
    pool_ = std::make_unique<ThreadPool>(want - 1);
    gang_ = std::make_unique<ShardGang>(pool_.get(), want);
  }
}

ShardCrew::~ShardCrew() = default;  // gang_ (helpers) before pool_ (workers)

void ShardGang::helper_loop(const std::shared_ptr<State>& stp) {
  State& st = *stp;
  {
    // Register as live only on actual startup: the destructor joins started
    // helpers, while ones the pool never scheduled before shutdown exit here
    // unregistered (they keep the state alive through their shared_ptr).
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.stop.load(std::memory_order_acquire)) return;
    ++st.live_helpers;
  }
  uint64_t seen = 0;
  for (;;) {
    // Wait for the next round: bounded spin, then park. The engine holds the
    // epoch steady across inline-evaluated light cycles, so a helper serving
    // a mostly-idle cluster parks here and costs nothing.
    int spins = 0;
    uint64_t t;
    for (;;) {
      if (st.stop.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(st.mu);
        if (--st.live_helpers == 0) st.cv_exit.notify_all();
        return;
      }
      t = st.ticket.load(std::memory_order_acquire);
      if ((t >> 32) != seen) break;
      if (++spins <= kSpinBudget) {
        cpu_pause();
        continue;
      }
      std::unique_lock<std::mutex> lock(st.mu);
      st.park_events.fetch_add(1, std::memory_order_relaxed);
      st.parked.fetch_add(1, std::memory_order_release);
      st.cv.wait(lock, [&] {
        return (st.ticket.load(std::memory_order_acquire) >> 32) != seen ||
               st.stop.load(std::memory_order_acquire);
      });
      st.parked.fetch_sub(1, std::memory_order_release);
      spins = 0;
    }
    seen = t >> 32;
    st.work();
  }
}

}  // namespace mempool::runner
