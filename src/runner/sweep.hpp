#pragma once
// SweepSpec: a cartesian grid over the experiment axes of Figs. 5-7 —
// topology, memory system, offered load λ, locality p_local, and seed —
// expanded into the flat list of TrafficExperimentConfig points the parallel
// runner executes.
//
// Expansion order is fixed and row-major (topology ▸ memory ▸ p_local ▸ λ ▸
// seed, innermost last), so a point's flat index — and therefore the order
// of the results vector — is a pure function of the spec, independent of how
// the points are scheduled across threads.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "traffic/experiment.hpp"

namespace mempool::runner {

struct SweepSpec {
  /// Template for every point: cycle counts and the cluster parameters that
  /// are not swept. Axis values below overwrite the corresponding fields.
  TrafficExperimentConfig base;

  // Axes. An empty axis means "keep the base config's value" and contributes
  // a factor of 1 to the grid. The topology axis carries full TopologySpecs
  // ({name, params}); legacy Topology enumerators convert implicitly, so
  // `spec.topologies = {Topology::kTop1, "TopH2"}` mixes freely.
  std::vector<TopologySpec> topologies;
  /// Memory-system axis ({name, params} specs resolved against the
  /// MemoryRegistry); empty = keep the base config's memory system.
  std::vector<MemorySpec> memories;
  std::vector<double> lambdas;
  std::vector<double> p_locals;
  std::vector<uint64_t> seeds;

  /// When true (default), a swept topology rebuilds the cluster via
  /// ClusterConfig::paper(spec, base.cluster.scrambling) — each plugin's
  /// canonical scale; when false only base.cluster.topology is swapped.
  bool paper_cluster = true;

  std::size_t num_points() const;

  /// The flat point list in canonical order as service requests — the sweep
  /// grid and the simulation server speak the same currency, so a runner
  /// batch and a server batch of the same spec share cache keys. Index
  /// layout:
  ///   i = (((t * |memories| + m) * |p_locals| + p) * |lambdas| + l)
  ///           * |seeds| + s
  /// with each factor clamped to >= 1 for empty axes.
  std::vector<serve::SimRequest> expand_requests() const;

  /// expand_requests() unwrapped to the raw experiment configs (the legacy
  /// shape the runner and result writers consume). Same order.
  std::vector<TrafficExperimentConfig> expand() const;

  /// Human-readable label of point @p i ("TopH λ=0.33 p=0.25 seed=1").
  std::string point_label(std::size_t i) const;
};

}  // namespace mempool::runner
