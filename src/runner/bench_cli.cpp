#include "runner/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "noc/fabric.hpp"
#include "runner/results.hpp"

namespace mempool::runner {

namespace {

[[noreturn]] void usage(const std::string& bench, int code) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--json PATH | --no-json] [--quiet] "
               "[--dense] [--topology NAME] [--list-topologies] "
               "[bench-specific args]\n"
               "  --threads N        worker threads (default: MEMPOOL_THREADS "
               "env var, else all cores)\n"
               "  --json PATH        results file (default: %s.results.json)\n"
               "  --no-json          do not write a results file\n"
               "  --quiet            no stderr progress ticker\n"
               "  --dense            dense evaluate-everything engine "
               "(bit-identical fallback)\n"
               "  --topology NAME    fabric topology (available: %s)\n"
               "  --list-topologies  list the registered fabric topologies "
               "and exit\n",
               bench.c_str(), bench.c_str(),
               FabricRegistry::available().c_str());
  std::exit(code);
}

[[noreturn]] void list_topologies() {
  std::fprintf(stderr, "registered fabric topologies:\n");
  for (const std::string& name : FabricRegistry::names()) {
    std::fprintf(stderr, "  %-6s  %s\n", name.c_str(),
                 FabricRegistry::get(name).description().c_str());
  }
  std::exit(0);
}

}  // namespace

TopologySpec parse_topology_or_exit(const std::string& name) {
  if (FabricRegistry::find(name) == nullptr) {
    std::fprintf(stderr, "unknown topology '%s'; available: %s\n",
                 name.c_str(), FabricRegistry::available().c_str());
    std::exit(2);
  }
  return TopologySpec{name};
}

BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name,
                                 bool accepts_topology) {
  BenchOptions opts;
  opts.bench_name = bench_name;
  opts.json_path = bench_name + ".results.json";

  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", bench_name.c_str(),
                     a);
        usage(bench_name, 2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--threads") == 0) {
      const long v = std::strtol(value(), nullptr, 10);
      if (v <= 0) {
        std::fprintf(stderr, "%s: --threads wants a positive integer\n",
                     bench_name.c_str());
        usage(bench_name, 2);
      }
      opts.threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--json") == 0) {
      opts.json_path = value();
    } else if (std::strcmp(a, "--no-json") == 0) {
      opts.json_path.clear();
    } else if (std::strcmp(a, "--quiet") == 0) {
      opts.progress = false;
    } else if (std::strcmp(a, "--dense") == 0) {
      opts.dense = true;
    } else if (std::strcmp(a, "--topology") == 0) {
      if (!accepts_topology) {
        std::fprintf(stderr,
                     "%s: --topology is not supported by this bench (its "
                     "topology set is fixed)\n",
                     bench_name.c_str());
        std::exit(2);
      }
      opts.topology = parse_topology_or_exit(value()).name;
    } else if (std::strcmp(a, "--list-topologies") == 0) {
      list_topologies();
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(bench_name, 0);
    } else {
      argv[out++] = argv[i];  // leave for the bench's own parser
    }
  }
  *argc = out;
  return opts;
}

void write_bench_results(const BenchOptions& opts, unsigned threads,
                         double wall_seconds, Json results) {
  if (opts.json_path.empty()) return;
  try {
    write_json_file(opts.json_path,
                    bench_envelope(opts.bench_name, threads, wall_seconds,
                                   std::move(results)));
  } catch (const std::exception& e) {
    // The tables already went to stdout; don't let a bad --json path abort
    // the process after minutes of simulation — report and fail cleanly.
    std::fprintf(stderr, "%s: %s\n", opts.bench_name.c_str(), e.what());
    std::exit(1);
  }
  std::fprintf(stderr, "results written to %s\n", opts.json_path.c_str());
}

}  // namespace mempool::runner
