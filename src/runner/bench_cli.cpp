#include "runner/bench_cli.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"
#include "runner/results.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"
#include "verify/drc_matrix.hpp"

namespace mempool::runner {

namespace {

[[noreturn]] void usage(const std::string& bench, int code) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--sim-threads N] [--engine MODE] "
               "[--json PATH | --no-json] [--quiet] "
               "[--topology NAME] [--list-topologies] "
               "[bench-specific args]\n"
               "  --threads N        sweep worker threads: how many points "
               "run concurrently\n"
               "                     (default: MEMPOOL_THREADS env var, else "
               "all cores)\n"
               "  --sim-threads N    engine threads: how many shards of one "
               "point's cluster\n"
               "                     step concurrently (--engine sharded "
               "only; default 1)\n"
               "  --engine MODE      active (default) | dense | sharded — "
               "bit-identical\n"
               "                     results, different wall-clock\n"
               "  --dense            alias for --engine dense\n"
               "  --json PATH        results file (default: %s.results.json)\n"
               "  --no-json          do not write a results file\n"
               "  --quiet            no stderr progress ticker\n"
               "  --topology NAME    fabric topology (available: %s)\n"
               "  --list-topologies  list the registered fabric topologies "
               "and exit\n"
               "  --memory NAME      memory system (available: %s)\n"
               "  --list-memories    list the registered memory systems and "
               "exit\n"
               "  --list-engines     list the engine modes and exit\n"
               "  --drc              run the design-rule checker over every "
               "registered\n"
               "                     topology x memory x engine combination "
               "(paper-scale\n"
               "                     configs, no cycles simulated), write "
               "%s.drc.json,\n"
               "                     and exit 0 iff every case is clean\n"
               "  --drc-out PATH     where --drc writes its report (default: "
               "%s.drc.json)\n"
               "  --stall-horizon N  abort with a mempool.liveness.v1 stall "
               "report if any\n"
               "                     non-empty buffer drains nothing for N "
               "consecutive\n"
               "                     cycles (0 = watchdog disabled)\n"
               "  --checkpoint-every N  (single-point benches) snapshot the "
               "engine every N\n"
               "                     cycles into a mempool.ckpt.v1 file "
               "(atomic write)\n"
               "  --checkpoint-out PATH  checkpoint file (default: "
               "%s.ckpt)\n"
               "  --restore PATH     resume a single point from a "
               "mempool.ckpt.v1 image;\n"
               "                     the result is bit-identical to an "
               "uninterrupted run\n",
               bench.c_str(), bench.c_str(),
               FabricRegistry::available().c_str(),
               MemoryRegistry::available().c_str(), bench.c_str(),
               bench.c_str(), bench.c_str());
  std::exit(code);
}

[[noreturn]] void list_engines() {
  std::fprintf(stderr, "engine modes (all bit-identical; --engine MODE):\n");
  for (EngineMode m :
       {EngineMode::kActive, EngineMode::kDense, EngineMode::kSharded}) {
    std::fprintf(stderr, "  %-8s  %s\n", engine_mode_name(m),
                 engine_mode_description(m));
  }
  std::exit(0);
}

[[noreturn]] void list_topologies() {
  std::fprintf(stderr, "registered fabric topologies:\n");
  for (const std::string& name : FabricRegistry::names()) {
    std::fprintf(stderr, "  %-6s  %s\n", name.c_str(),
                 FabricRegistry::get(name).description().c_str());
  }
  std::exit(0);
}

[[noreturn]] void list_memories() {
  std::fprintf(stderr, "registered memory systems:\n");
  for (const std::string& name : MemoryRegistry::names()) {
    std::fprintf(stderr, "  %-8s  %s\n", name.c_str(),
                 MemoryRegistry::get(name).description().c_str());
  }
  std::exit(0);
}

/// --drc: elaborate every registered topology x memory x engine combination
/// at paper scale, lint each with the design-rule checker (D1..D9, sorted
/// violations), emit the mempool.drc.v1 document to @p path, and exit 0 iff
/// every case is clean. No cycles are simulated — this is the CI design-rule
/// gate, runnable from any bench.
[[noreturn]] void run_drc_matrix(const std::string& bench,
                                 const std::string& path) {
  bool clean = false;
  const Json doc = verify::drc_matrix_report(/*mini=*/false, &clean);
  for (const Json& c : doc.at("cases").items()) {
    const std::size_t violations = c.at("violations").size();
    std::fprintf(stderr, "  %-6s x %-8s x %-8s  %s",
                 c.at("topology").as_string().c_str(),
                 c.at("memory").as_string().c_str(),
                 c.at("engine").as_string().c_str(),
                 violations == 0 ? "clean" : "VIOLATIONS");
    if (violations != 0) {
      std::fprintf(stderr, " (%zu)", violations);
      for (const Json& v : c.at("violations").items()) {
        std::fprintf(stderr, "\n    [%s] %s (%s): %s",
                     v.at("rule").as_string().c_str(),
                     v.at("component").as_string().c_str(),
                     v.at("edge").as_string().c_str(),
                     v.at("detail").as_string().c_str());
      }
    }
    std::fprintf(stderr, "\n");
  }
  write_json_file(path, doc);
  std::fprintf(stderr, "%s: DRC %s over %zu cases; report written to %s\n",
               bench.c_str(), clean ? "clean" : "FAILED",
               doc.at("cases").size(), path.c_str());
  std::exit(clean ? 0 : 1);
}

}  // namespace

TopologySpec parse_topology_or_exit(const std::string& name) {
  if (FabricRegistry::find(name) == nullptr) {
    std::fprintf(stderr, "unknown topology '%s'; available: %s\n",
                 name.c_str(), FabricRegistry::available().c_str());
    std::exit(2);
  }
  return TopologySpec{name};
}

MemorySpec parse_memory_or_exit(const std::string& name) {
  if (MemoryRegistry::find(name) == nullptr) {
    std::fprintf(stderr, "unknown memory system '%s'; available: %s\n",
                 name.c_str(), MemoryRegistry::available().c_str());
    std::exit(2);
  }
  return MemorySpec{name};
}

BenchOptions parse_bench_options(int* argc, char** argv,
                                 const std::string& bench_name,
                                 bool accepts_topology, bool accepts_memory,
                                 bool accepts_checkpoint) {
  BenchOptions opts;
  opts.bench_name = bench_name;
  opts.json_path = bench_name + ".results.json";

  // --drc is collected, not executed, during the loop so --drc-out is
  // honored regardless of flag order on the command line.
  bool want_drc = false;
  std::string drc_out;

  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", bench_name.c_str(),
                     a);
        usage(bench_name, 2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--threads") == 0) {
      const char* v_str = value();
      char* end = nullptr;
      const long v = std::strtol(v_str, &end, 10);
      if (v <= 0 || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr,
                     "%s: --threads wants a positive integer (sweep workers: "
                     "how many points run concurrently); engine-level "
                     "parallelism is --sim-threads\n",
                     bench_name.c_str());
        usage(bench_name, 2);
      }
      opts.threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--sim-threads") == 0) {
      const char* v_str = value();
      char* end = nullptr;
      const long v = std::strtol(v_str, &end, 10);
      if (v <= 0 || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr,
                     "%s: --sim-threads wants a positive integer (engine "
                     "threads per point); sweep-level parallelism is "
                     "--threads\n",
                     bench_name.c_str());
        usage(bench_name, 2);
      }
      opts.sim_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(a, "--sim_threads") == 0 ||
               std::strcmp(a, "--engine-threads") == 0 ||
               std::strcmp(a, "--engine_threads") == 0) {
      // The historically ambiguous spellings: refuse instead of guessing
      // which of the two thread axes was meant.
      std::fprintf(stderr,
                   "%s: unknown flag '%s' — use --threads N for sweep "
                   "workers (points in parallel) or --sim-threads N for "
                   "engine threads (shards of one point in parallel)\n",
                   bench_name.c_str(), a);
      std::exit(2);
    } else if (std::strcmp(a, "--engine") == 0) {
      const char* mode = value();
      if (!engine_mode_from_name(mode, &opts.engine)) {
        std::fprintf(stderr, "%s: unknown engine '%s'; available: %s\n",
                     bench_name.c_str(), mode, engine_mode_available());
        std::exit(2);
      }
    } else if (std::strcmp(a, "--json") == 0) {
      opts.json_path = value();
    } else if (std::strcmp(a, "--no-json") == 0) {
      opts.json_path.clear();
    } else if (std::strcmp(a, "--quiet") == 0) {
      opts.progress = false;
    } else if (std::strcmp(a, "--dense") == 0) {
      opts.engine = EngineMode::kDense;
    } else if (std::strcmp(a, "--topology") == 0) {
      if (!accepts_topology) {
        std::fprintf(stderr,
                     "%s: --topology is not supported by this bench (its "
                     "topology set is fixed)\n",
                     bench_name.c_str());
        std::exit(2);
      }
      opts.topology = parse_topology_or_exit(value()).name;
    } else if (std::strcmp(a, "--list-topologies") == 0) {
      list_topologies();
    } else if (std::strcmp(a, "--memory") == 0) {
      if (!accepts_memory) {
        std::fprintf(stderr,
                     "%s: --memory is not supported by this bench (its "
                     "memory system is fixed)\n",
                     bench_name.c_str());
        std::exit(2);
      }
      opts.memory = parse_memory_or_exit(value()).name;
    } else if (std::strcmp(a, "--list-memories") == 0) {
      list_memories();
    } else if (std::strcmp(a, "--list-engines") == 0) {
      list_engines();
    } else if (std::strcmp(a, "--drc") == 0) {
      want_drc = true;
    } else if (std::strcmp(a, "--drc-out") == 0) {
      drc_out = value();
    } else if (std::strcmp(a, "--stall-horizon") == 0) {
      const char* v_str = value();
      char* end = nullptr;
      const long long v = std::strtoll(v_str, &end, 10);
      if (v < 0 || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr,
                     "%s: --stall-horizon wants a non-negative cycle count "
                     "(0 disables the progress watchdog)\n",
                     bench_name.c_str());
        usage(bench_name, 2);
      }
      opts.stall_horizon = static_cast<uint64_t>(v);
    } else if (std::strcmp(a, "--checkpoint-every") == 0 ||
               std::strcmp(a, "--checkpoint-out") == 0 ||
               std::strcmp(a, "--restore") == 0) {
      if (!accepts_checkpoint) {
        std::fprintf(stderr,
                     "%s: %s is not supported by this bench (checkpointing "
                     "applies to single-point harnesses only)\n",
                     bench_name.c_str(), a);
        std::exit(2);
      }
      if (std::strcmp(a, "--checkpoint-every") == 0) {
        const char* v_str = value();
        char* end = nullptr;
        const long long v = std::strtoll(v_str, &end, 10);
        if (v < 0 || (end != nullptr && *end != '\0')) {
          std::fprintf(stderr,
                       "%s: --checkpoint-every wants a non-negative cycle "
                       "count (0 disables checkpointing)\n",
                       bench_name.c_str());
          usage(bench_name, 2);
        }
        opts.checkpoint_every = static_cast<uint64_t>(v);
      } else if (std::strcmp(a, "--checkpoint-out") == 0) {
        opts.checkpoint_out = value();
      } else {
        opts.restore_path = value();
      }
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(bench_name, 0);
    } else {
      argv[out++] = argv[i];  // leave for the bench's own parser
    }
  }
  *argc = out;
  if (want_drc) {
    run_drc_matrix(bench_name,
                   drc_out.empty() ? bench_name + ".drc.json" : drc_out);
  }
  if (!drc_out.empty()) {
    std::fprintf(stderr, "%s: --drc-out only applies with --drc\n",
                 bench_name.c_str());
    std::exit(2);
  }
  if (!opts.checkpoint_out.empty() && opts.checkpoint_every == 0) {
    std::fprintf(stderr, "%s: --checkpoint-out only applies with "
                 "--checkpoint-every\n",
                 bench_name.c_str());
    std::exit(2);
  }
  if (opts.sim_threads > 1 && opts.engine != EngineMode::kSharded) {
    std::fprintf(stderr,
                 "%s: --sim-threads only applies to --engine sharded (the "
                 "sequential engines step one point on one thread; use "
                 "--threads for sweep-level parallelism)\n",
                 bench_name.c_str());
    std::exit(2);
  }
  return opts;
}

TrafficPoint run_checkpointed_point(const BenchOptions& opts,
                                    const TrafficExperimentConfig& cfg,
                                    TrafficCounters* counters_out) {
  CheckpointOptions ckpt;
  ckpt.checkpoint_every = opts.checkpoint_every;
  ckpt.key = opts.bench_name;

  // Resume image: read the whole file up front; deserialize inside
  // run_traffic_point validates the CRC/trailer, so a torn or bit-flipped
  // file is rejected before any state is loaded.
  std::string image;
  if (!opts.restore_path.empty()) {
    std::ifstream in(opts.restore_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read --restore image '%s'\n",
                   opts.bench_name.c_str(), opts.restore_path.c_str());
      std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
    ckpt.restore_from = &image;
  }

  const std::string out_path = opts.checkpoint_out.empty()
                                   ? opts.bench_name + ".ckpt"
                                   : opts.checkpoint_out;
  if (opts.checkpoint_every != 0) {
    ckpt.on_checkpoint = [&out_path, &opts](uint64_t cycle,
                                            const std::string& img) {
      // Write-then-rename: a kill at any instant leaves either the previous
      // complete image or this one on disk, never a torn file.
      const std::string tmp =
          out_path + ".tmp." + std::to_string(::getpid());
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) out.write(img.data(), static_cast<std::streamsize>(img.size()));
      if (!out || std::rename(tmp.c_str(), out_path.c_str()) != 0) {
        std::remove(tmp.c_str());
        std::fprintf(stderr, "%s: failed to write checkpoint %s\n",
                     opts.bench_name.c_str(), out_path.c_str());
        std::exit(1);
      }
      if (opts.progress) {
        std::fprintf(stderr, "%s: checkpoint at cycle %llu -> %s\n",
                     opts.bench_name.c_str(),
                     static_cast<unsigned long long>(cycle), out_path.c_str());
      }
    };
  }

  try {
    return run_traffic_point(cfg, ckpt, counters_out);
  } catch (const CheckError& e) {
    // A corrupt or mismatched restore image is a CLI error, not a crash.
    std::fprintf(stderr, "%s: %s\n", opts.bench_name.c_str(), e.what());
    std::exit(2);
  }
}

int guarded_bench_main(const std::string& bench_name,
                       const std::function<int()>& body) {
  try {
    return body();
  } catch (const LivenessError& e) {
    // The progress watchdog aborted a wedged point: surface the structured
    // stall attribution instead of an uncaught-exception terminate.
    std::fprintf(stderr, "%s: %s\n%s\n", bench_name.c_str(), e.what(),
                 e.report().dump(2).c_str());
    return 3;
  }
}

void write_bench_results(const BenchOptions& opts, unsigned threads,
                         double wall_seconds, Json results) {
  if (opts.json_path.empty()) return;
  try {
    write_json_file(opts.json_path,
                    bench_envelope(opts.bench_name, threads, wall_seconds,
                                   std::move(results)));
  } catch (const std::exception& e) {
    // The tables already went to stdout; don't let a bad --json path abort
    // the process after minutes of simulation — report and fail cleanly.
    std::fprintf(stderr, "%s: %s\n", opts.bench_name.c_str(), e.what());
    std::exit(1);
  }
  std::fprintf(stderr, "results written to %s\n", opts.json_path.c_str());
}

}  // namespace mempool::runner
