#pragma once
// Machine-readable results files for the bench harnesses.
//
// Every bench writes `<bench>.results.json` (overridable with --json) in the
// envelope schema `mempool.bench.v1`:
//
//   {
//     "schema": "mempool.bench.v1",
//     "bench": "fig5_topology_sweep",
//     "threads": 8,
//     "wall_seconds": 12.3,
//     "results": { ... bench-specific ... }
//   }
//
// Traffic sweeps embed the sweep schema `mempool.sweep.v3` under "results"
// (or as a named sub-object): one record per point carrying the full config
// axes and the measured TrafficPoint, so trajectories are self-describing.
// The topology and the memory system are self-describing `{name, params}`
// specs resolved against their registries on read; v2 documents (no
// "memory" member — implies tcdm) and v1 documents (bare topology name
// strings) are still accepted by sweep_from_json:
//
//   {
//     "schema": "mempool.sweep.v3",
//     "threads": 8,
//     "wall_seconds": 12.3,
//     "points": [
//       {"topology": {"name": "TopH", "params": {}},
//        "memory": {"name": "tcdm", "params": {}},
//        "scrambling": false, "num_tiles": 64,
//        "cores_per_tile": 4, "banks_per_tile": 16, "bank_bytes": 1024,
//        "seq_region_bytes": 4096, "num_groups": 4,
//        "lambda": 0.33, "p_local": 0.25, "seed": 1,
//        "warmup_cycles": 1000, "measure_cycles": 4000, "drain_cycles": 2000,
//        "offered": 0.33, "generated": 0.331, "accepted": 0.329,
//        "avg_latency": 5.9, "p95_latency": 11.0, "max_latency": 55.0,
//        "completed": 338000},
//       ...
//     ]
//   }
//
// Doubles are serialized with shortest-round-trip precision, so a sweep
// written and read back compares bit-identical — the determinism tests rely
// on this.

#include <string>

#include "common/json.hpp"
#include "runner/runner.hpp"

namespace mempool::runner {

/// Serialize a sweep result (schema mempool.sweep.v3).
Json sweep_to_json(const SweepResult& result);

/// Inverse of sweep_to_json; also reads legacy mempool.sweep.v1/v2
/// documents. Throws CheckError on schema violations and unknown topology /
/// memory-system names (the error lists the registered plugins).
SweepResult sweep_from_json(const Json& j);

/// Parsed scheduler-speedup artifact (micro_sim_speed --speedup_json).
/// mempool.speedup.v2 adds the sharded-engine axis; v3 adds the paper-point
/// absolute rate block (256-core TopH λ=0.05: simulated cycles per wall-clock
/// second). Older documents are still read — fields their schema lacks stay
/// 0 — so the CI perf gate can compare any PR against any committed baseline.
struct SpeedupSummary {
  std::string schema;
  /// Wall-clock of the dense oracle over the activity-driven engine, summed
  /// across the workload set (all schema versions).
  double aggregate_speedup = 0;
  double min_speedup = 0;
  /// v2+: single-thread active over the best sharded configuration.
  double aggregate_sharded_speedup = 0;
  /// v3: absolute active-engine rate at the paper point, plus the same rate
  /// normalized per fabric shard and the sharded engine's single-thread rate.
  /// Host-dependent (wall-clock), unlike the ratios above.
  double paper_cycles_per_second = 0;
  double paper_cycles_per_second_per_shard = 0;
  double paper_sharded_1t_cycles_per_second = 0;
  std::size_t num_points = 0;
};

/// Read a mempool.speedup.v1, .v2, or .v3 document; throws CheckError on
/// anything else.
SpeedupSummary speedup_from_json(const Json& j);

/// Wrap bench-specific results in the mempool.bench.v1 envelope.
Json bench_envelope(const std::string& bench, unsigned threads,
                    double wall_seconds, Json results);

/// Write @p j pretty-printed to @p path (throws CheckError on I/O failure).
void write_json_file(const std::string& path, const Json& j);

/// Read and parse a JSON file (throws CheckError on I/O or parse failure).
Json read_json_file(const std::string& path);

}  // namespace mempool::runner
