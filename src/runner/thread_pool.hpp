#pragma once
// Work-stealing thread pool for the parallel experiment runner.
//
// Each worker owns a deque: it pushes/pops work at the front (LIFO, cache
// friendly) and victims are stolen from at the back (FIFO, coarse grain).
// Tasks submitted from non-worker threads are distributed round-robin.
//
// Exceptions do not kill workers or wedge the pool: a throwing task is
// recorded (first one wins), the remaining queued tasks still run, and
// wait_idle() rethrows the captured exception once the pool has drained.
// Simulation points are independent, so "drain everything, then report the
// first failure" is the semantics every caller wants.
//
// Idle behavior (matters for barrier workloads like the sharded engine's
// ShardGang, whose helper tasks live on this pool): a worker that finds all
// deques empty re-polls with a short *bounded* spin — work arriving within a
// few microseconds (the next simulated cycle) is picked up without a futex
// round trip — and then parks on the work condition variable until the next
// submit. A pool hosting a mostly-idle sharded run therefore burns one core,
// not num_threads() cores; tests/test_runner_pool.cpp pins this via
// parked_workers().

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mempool::runner {

class ThreadPool {
 public:
  /// @param num_threads worker count; 0 picks std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains outstanding work, then joins all workers. Pending exceptions that
  /// were never observed via wait_idle() are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue @p task. When called from a worker thread the task goes to that
  /// worker's own deque (depth-first execution of nested submissions).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown (after the drain completes).
  void wait_idle();

  /// Default thread count: MEMPOOL_THREADS env var when set, else
  /// hardware_concurrency, else 1.
  static unsigned default_threads();

  // --- idle introspection (tests) -------------------------------------------
  /// Workers currently parked on the work condition variable (neither
  /// running a task nor spinning for one).
  unsigned parked_workers() const {
    return parked_.load(std::memory_order_acquire);
  }
  /// Total park events since construction.
  uint64_t park_events() const {
    return park_events_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mu;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task);
  bool any_queued();
  void run_task(std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards pending_, stop_, first_error_
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t pending_ = 0;        // submitted but not yet finished
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::size_t next_queue_ = 0;     // round-robin target for external submits
  std::atomic<unsigned> parked_{0};
  std::atomic<uint64_t> park_events_{0};
  std::atomic<uint64_t> work_epoch_{0};  // bumped per submit; spun on by
                                         // idle workers before they park
};

}  // namespace mempool::runner
