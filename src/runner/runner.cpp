#include "runner/runner.hpp"

#include <chrono>
#include <cstdio>

#include "runner/parallel.hpp"
#include "runner/thread_pool.hpp"
#include "serve/request.hpp"

namespace mempool::runner {

SweepResult run_points(const std::vector<TrafficExperimentConfig>& configs,
                       const RunnerOptions& opts) {
  SweepResult result;
  result.configs = configs;

  ThreadPool pool(opts.threads);
  result.threads = pool.num_threads();

  const auto t0 = std::chrono::steady_clock::now();
  // Batch execution goes through the same serve::run_point entry the
  // simulation server uses, so CLI sweeps and served requests are one code
  // path (and provably bit-identical).
  result.points = run_indexed(
      pool, configs.size(),
      [&](std::size_t i) {
        return serve::run_point(
                   serve::SimRequest::from_config(result.configs[i]))
            .point;
      },
      opts.progress ? std::function<void(std::size_t)>([](std::size_t) {
        std::fputc('.', stderr);
        std::fflush(stderr);
      })
                    : nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  if (opts.progress) std::fputc('\n', stderr);

  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

SweepResult run_sweep(const SweepSpec& spec, const RunnerOptions& opts) {
  return run_points(spec.expand(), opts);
}

}  // namespace mempool::runner
