#include "physical/floorplan.hpp"

#include <cmath>

#include "common/bitutil.hpp"

namespace mempool::physical {

Floorplan::Floorplan(const FloorplanParams& p) : p_(p) {
  MEMPOOL_CHECK(is_pow2(p_.num_tiles));
  dim_ = 1u << (log2_exact(p_.num_tiles) / 2);
  if (dim_ * dim_ < p_.num_tiles) dim_ *= 2;  // non-square power of two
  MEMPOOL_CHECK(dim_ * dim_ >= p_.num_tiles);
  pitch_ = p_.die_mm / static_cast<double>(dim_);
  MEMPOOL_CHECK_MSG(pitch_ >= p_.tile_mm,
                    "tiles do not fit the die at this pitch");
}

Point Floorplan::tile_center(uint32_t tile) const {
  MEMPOOL_CHECK(tile < p_.num_tiles);
  const uint32_t row = tile / dim_;
  const uint32_t col = tile % dim_;
  return {(col + 0.5) * pitch_, (row + 0.5) * pitch_};
}

uint32_t Floorplan::group_grid_dim() const {
  MEMPOOL_CHECK_MSG(is_pow2(p_.num_groups) &&
                        log2_exact(p_.num_groups) % 2 == 0,
                    "grouped layout needs num_groups = 4^j");
  return 1u << (log2_exact(p_.num_groups) / 2);
}

Point Floorplan::tile_center_grouped(uint32_t tile) const {
  MEMPOOL_CHECK(tile < p_.num_tiles);
  const uint32_t tpg = p_.num_tiles / p_.num_groups;
  const uint32_t g = tile / tpg;
  const uint32_t local = tile % tpg;
  const uint32_t ggrid = group_grid_dim();
  const uint32_t gdim = dim_ / ggrid;  // grid-cell edge in tiles
  MEMPOOL_CHECK_MSG(gdim * gdim == tpg,
                    "grouped layout needs square groups on the tile grid");
  const uint32_t row = local / gdim;
  const uint32_t col = local % gdim;
  const double cell = p_.die_mm / ggrid;
  const double qx = (g % ggrid) * cell;
  const double qy = (g / ggrid) * cell;
  return {qx + (col + 0.5) * pitch_, qy + (row + 0.5) * pitch_};
}

Point Floorplan::group_center(uint32_t g) const {
  const uint32_t ggrid = group_grid_dim();
  const double cell = p_.die_mm / ggrid;
  return {(g % ggrid + 0.5) * cell, (g / ggrid + 0.5) * cell};
}

double Floorplan::tile_area_fraction() const {
  const double tiles = static_cast<double>(p_.num_tiles) * p_.tile_mm * p_.tile_mm;
  return tiles / (p_.die_mm * p_.die_mm);
}

}  // namespace mempool::physical
