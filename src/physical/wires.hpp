#pragma once
// Topology wiring primitives: the point-to-point wire bundles an interconnect
// requires, with Manhattan lengths over the floorplan. Request and response
// networks are separate (two parallel interconnects), and each bundle carries
// a full request word (~address + data + metadata ≈ 80 bits).
//
// Which bundles a topology needs is no longer decided here: each
// FabricTopology plugin extracts its own wires (FabricTopology::wires) from
// the floorplan geometry. This module keeps the shared vocabulary (WireBundle,
// total_bit_mm) plus star_wires(), the monolithic central-hub wiring that is
// both Top1's own realization and the congestion baseline every feasibility
// verdict is measured against.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "physical/floorplan.hpp"

namespace mempool::physical {

enum class WireKind : uint8_t {
  kTileToHub,    ///< Tile ↔ central butterfly (Top1/Top4).
  kTileToGroup,  ///< Tile ↔ group-local crossbar (TopH/TopH2 L).
  kGroupToGroup, ///< Tile ↔ inter-group butterfly hub (TopH N/NE/E).
};

struct WireBundle {
  Point a;
  Point b;
  uint32_t bits = 80;
  WireKind kind = WireKind::kTileToHub;
  double manhattan_mm() const {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
  }
  /// Wire resource demand: length × width.
  double bit_mm() const { return manhattan_mm() * bits; }
};

/// One tile↔hub bundle pair (request + response) for every tile, hub at the
/// die centre — "regardless of the physical distance between the tiles"
/// (Sec. VI-C). Exactly Top1's wiring; Top4 is four copies of it.
std::vector<WireBundle> star_wires(const Floorplan& fp,
                                   uint32_t request_bits = 80,
                                   uint32_t response_bits = 48);

/// Total wire demand in bit·mm.
double total_bit_mm(const std::vector<WireBundle>& wires);

}  // namespace mempool::physical
