#pragma once
// Topology wiring extraction: the set of top-level point-to-point wire
// bundles each interconnect topology requires, with Manhattan lengths over
// the floorplan. Request and response networks are separate (two parallel
// interconnects), and each bundle carries a full request word
// (~address + data + metadata ≈ 80 bits).

#include <cstdint>
#include <string>
#include <vector>

#include "physical/floorplan.hpp"

namespace mempool::physical {

enum class WireKind : uint8_t {
  kTileToHub,    ///< Tile ↔ central butterfly (Top1/Top4).
  kTileToGroup,  ///< Tile ↔ group-local crossbar (TopH L).
  kGroupToGroup, ///< Tile ↔ inter-group butterfly hub (TopH N/NE/E).
};

struct WireBundle {
  Point a;
  Point b;
  uint32_t bits = 80;
  WireKind kind = WireKind::kTileToHub;
  double manhattan_mm() const {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
  }
  /// Wire resource demand: length × width.
  double bit_mm() const { return manhattan_mm() * bits; }
};

/// Which cluster topology to extract (mirrors core/cluster_config.hpp without
/// depending on it; the physical model is standalone).
enum class PhysTopology : uint8_t { kTop1, kTop4, kTopH };

std::string phys_topology_name(PhysTopology t);

/// Extract all top-level wire bundles of a topology over the floorplan.
/// Includes both travel directions (request + response networks).
std::vector<WireBundle> extract_wires(PhysTopology topo, const Floorplan& fp,
                                      uint32_t request_bits = 80,
                                      uint32_t response_bits = 48);

/// Total wire demand in bit·mm.
double total_bit_mm(const std::vector<WireBundle>& wires);

}  // namespace mempool::physical
