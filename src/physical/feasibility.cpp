#include "physical/feasibility.hpp"

#include <algorithm>

namespace mempool::physical {

FeasibilityReport analyze_wires(const std::string& name,
                                const std::vector<WireBundle>& wires,
                                const FeasibilityParams& p,
                                double baseline_center_demand) {
  CongestionMap cmap(p.floorplan.die_mm, p.congestion_cells);
  cmap.route_all(wires);

  FeasibilityReport r;
  r.name = name;
  r.total_wire_bit_mm = total_bit_mm(wires);
  r.center_congestion = cmap.center_demand();
  r.max_cell = cmap.max_cell();
  r.spread = cmap.spread();

  for (const auto& w : wires) {
    r.longest_wire_mm = std::max(r.longest_wire_mm, w.manhattan_mm());
  }
  // Critical path: the longest registered-to-registered stage spans roughly
  // one longest top-level wire (group boundary to remote ROB in TopH) plus
  // the logic depth the paper reports.
  const double logic_ns = p.timing.logic_depth * p.timing.gate_delay_ns;
  const double wire_ns = r.longest_wire_mm * p.timing.wire_delay_ns_per_mm;
  r.critical_path_ns = logic_ns + wire_ns;
  r.wire_delay_fraction = wire_ns / r.critical_path_ns;
  r.fmax_mhz = 1e3 / r.critical_path_ns;

  if (baseline_center_demand <= 0) baseline_center_demand = r.center_congestion;
  r.center_ratio_vs_top1 = baseline_center_demand > 0
                               ? r.center_congestion / baseline_center_demand
                               : 1.0;
  r.feasible = r.center_ratio_vs_top1 <= p.center_budget_vs_top1;
  return r;
}

}  // namespace mempool::physical
