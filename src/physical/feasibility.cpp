#include "physical/feasibility.hpp"

#include <algorithm>

namespace mempool::physical {

FeasibilityReport analyze(PhysTopology topo, const FeasibilityParams& p,
                          double top1_center_demand) {
  const Floorplan fp(p.floorplan);
  const std::vector<WireBundle> wires = extract_wires(topo, fp);

  CongestionMap cmap(p.floorplan.die_mm, p.congestion_cells);
  cmap.route_all(wires);

  FeasibilityReport r;
  r.name = phys_topology_name(topo);
  r.total_wire_bit_mm = total_bit_mm(wires);
  r.center_congestion = cmap.center_demand();
  r.max_cell = cmap.max_cell();
  r.spread = cmap.spread();

  for (const auto& w : wires) {
    r.longest_wire_mm = std::max(r.longest_wire_mm, w.manhattan_mm());
  }
  // Critical path: the longest registered-to-registered stage spans roughly
  // one longest top-level wire (group boundary to remote ROB in TopH) plus
  // the logic depth the paper reports.
  const double logic_ns = p.timing.logic_depth * p.timing.gate_delay_ns;
  const double wire_ns = r.longest_wire_mm * p.timing.wire_delay_ns_per_mm;
  r.critical_path_ns = logic_ns + wire_ns;
  r.wire_delay_fraction = wire_ns / r.critical_path_ns;
  r.fmax_mhz = 1e3 / r.critical_path_ns;

  if (top1_center_demand <= 0 && topo == PhysTopology::kTop1) {
    top1_center_demand = r.center_congestion;
  }
  r.center_ratio_vs_top1 =
      top1_center_demand > 0 ? r.center_congestion / top1_center_demand : 1.0;
  r.feasible = r.center_ratio_vs_top1 <= p.center_budget_vs_top1;
  return r;
}

std::vector<FeasibilityReport> analyze_all(const FeasibilityParams& p) {
  FeasibilityReport top1 = analyze(PhysTopology::kTop1, p);
  FeasibilityReport top4 =
      analyze(PhysTopology::kTop4, p, top1.center_congestion);
  FeasibilityReport toph =
      analyze(PhysTopology::kTopH, p, top1.center_congestion);
  return {top1, top4, toph};
}

}  // namespace mempool::physical
