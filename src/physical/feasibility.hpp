#pragma once
// Per-topology physical feasibility summary (Sections VI-B/C): wiring demand,
// centre congestion, a first-order timing estimate (logic depth + longest
// top-level wire), and a feasibility verdict calibrated such that the paper's
// conclusion holds: Top1 and TopH route, Top4 does not.
//
// This module is topology-agnostic: it analyzes any wire list against a
// congestion baseline. Which wires a topology needs comes from its
// FabricTopology plugin; the registry-driven sweep over every registered
// topology is analyze_all_topologies() in noc/fabric.hpp.

#include <string>
#include <vector>

#include "physical/congestion.hpp"
#include "physical/floorplan.hpp"
#include "physical/wires.hpp"

namespace mempool::physical {

struct TimingParams {
  // Calibrated to the paper's sign-off numbers: 480 MHz at SS/0.72 V with a
  // 36-gate critical path of which 37 % is wire delay.
  double gate_delay_ns = 0.0364;    ///< One gate at SS/0.72 V.
  uint32_t logic_depth = 36;        ///< Paper: 36 gates on the critical path.
  double wire_delay_ns_per_mm = 0.19;  ///< Buffered top-metal global wire.
};

struct FeasibilityReport {
  std::string name;
  double total_wire_bit_mm = 0;
  double center_congestion = 0;   ///< bit·mm in the central 2×2 cells.
  double center_ratio_vs_top1 = 0;///< vs the central-hub (star) baseline.
  double max_cell = 0;
  double spread = 0;              ///< Demand coefficient of variation.
  double longest_wire_mm = 0;
  double critical_path_ns = 0;
  double wire_delay_fraction = 0; ///< Paper: 37 % for TopH.
  double fmax_mhz = 0;
  bool feasible = false;
};

struct FeasibilityParams {
  FloorplanParams floorplan;
  TimingParams timing;
  uint32_t congestion_cells = 16;
  /// Centre demand above this multiple of the central-hub baseline is
  /// unroutable. Calibrated between TopH (~1.1×) and Top4 (4×).
  double center_budget_vs_top1 = 2.5;
};

/// Analyze one topology's wire list. @p baseline_center_demand is the centre
/// congestion of the monolithic central-hub reference (star_wires) on the
/// same floorplan; <= 0 means "self-baseline" (ratio 1.0 — Top1's case,
/// whose wiring *is* the star).
FeasibilityReport analyze_wires(const std::string& name,
                                const std::vector<WireBundle>& wires,
                                const FeasibilityParams& p,
                                double baseline_center_demand = 0.0);

}  // namespace mempool::physical
