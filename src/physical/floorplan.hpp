#pragma once
// Analytic floorplan of the MemPool cluster (Section VI): an 8×8 grid of
// 425 µm × 425 µm tile macros inside a 4.6 mm × 4.6 mm die. For the grouped
// layouts the local groups occupy a √G × √G grid of quadrant cells — the
// four TopH groups in the four quadrants (Figure 3b), TopH2's sixteen groups
// in a 4×4 grid on a double-edge die. This module is a *substitute* for the
// paper's place-and-route flow: it reproduces the geometry so the
// wiring/congestion analysis can reproduce the paper's relative claims (see
// DESIGN.md §1).

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mempool::physical {

struct Point {
  double x = 0;  ///< mm
  double y = 0;  ///< mm
};

struct FloorplanParams {
  uint32_t num_tiles = 64;
  uint32_t num_groups = 4;
  double tile_mm = 0.425;  ///< Tile macro edge (Section VI-B).
  double die_mm = 4.6;     ///< Cluster macro edge (Section VI-C).
};

class Floorplan {
 public:
  explicit Floorplan(const FloorplanParams& p = FloorplanParams{});

  const FloorplanParams& params() const { return p_; }
  uint32_t grid_dim() const { return dim_; }

  /// Tile centre for the row-major layout (Top1/Top4).
  Point tile_center(uint32_t tile) const;

  /// Tile centre for the grouped layout (TopH/TopH2): group g in grid cell
  /// (g % group_grid_dim, g / group_grid_dim), tiles row-major inside the
  /// cell. Requires num_groups = 4^j (a square grid of quadrant cells).
  Point tile_center_grouped(uint32_t tile) const;

  Point die_center() const { return {p_.die_mm / 2, p_.die_mm / 2}; }

  /// Centre of group @p g's grid cell.
  Point group_center(uint32_t g) const;

  /// Groups per grid edge in the grouped layout (TopH: 2, TopH2: 4).
  uint32_t group_grid_dim() const;

  /// Fraction of the die covered by tile macros (paper: 55 %).
  double tile_area_fraction() const;

 private:
  FloorplanParams p_;
  uint32_t dim_;        ///< Tiles per grid edge.
  double pitch_;        ///< Tile placement pitch, mm.
};

}  // namespace mempool::physical
