#include "physical/wires.hpp"

#include "common/check.hpp"

namespace mempool::physical {

std::vector<WireBundle> star_wires(const Floorplan& fp, uint32_t request_bits,
                                   uint32_t response_bits) {
  std::vector<WireBundle> wires;
  const uint32_t n = fp.params().num_tiles;
  wires.reserve(2 * n);
  for (uint32_t t = 0; t < n; ++t) {
    wires.push_back(
        {fp.tile_center(t), fp.die_center(), request_bits, WireKind::kTileToHub});
    wires.push_back({fp.die_center(), fp.tile_center(t), response_bits,
                     WireKind::kTileToHub});
  }
  return wires;
}

double total_bit_mm(const std::vector<WireBundle>& wires) {
  double s = 0;
  for (const auto& w : wires) s += w.bit_mm();
  return s;
}

}  // namespace mempool::physical
