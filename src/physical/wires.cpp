#include "physical/wires.hpp"

#include "common/check.hpp"

namespace mempool::physical {

std::string phys_topology_name(PhysTopology t) {
  switch (t) {
    case PhysTopology::kTop1: return "Top1";
    case PhysTopology::kTop4: return "Top4";
    case PhysTopology::kTopH: return "TopH";
  }
  return "?";
}

std::vector<WireBundle> extract_wires(PhysTopology topo, const Floorplan& fp,
                                      uint32_t request_bits,
                                      uint32_t response_bits) {
  std::vector<WireBundle> wires;
  const uint32_t n = fp.params().num_tiles;
  const uint32_t ng = fp.params().num_groups;

  auto both_ways = [&](Point a, Point b, WireKind kind) {
    wires.push_back({a, b, request_bits, kind});
    wires.push_back({b, a, response_bits, kind});
  };

  switch (topo) {
    case PhysTopology::kTop1:
      // Every tile connects to the single butterfly at the die centre,
      // "regardless of the physical distance between the tiles" (Sec. VI-C).
      for (uint32_t t = 0; t < n; ++t) {
        both_ways(fp.tile_center(t), fp.die_center(), WireKind::kTileToHub);
      }
      break;
    case PhysTopology::kTop4:
      // Four parallel butterflies: four times the Top1 wiring — "Top4 is four
      // times more congested than Top1".
      for (uint32_t k = 0; k < 4; ++k) {
        for (uint32_t t = 0; t < n; ++t) {
          both_ways(fp.tile_center(t), fp.die_center(), WireKind::kTileToHub);
        }
      }
      break;
    case PhysTopology::kTopH: {
      const uint32_t tpg = n / ng;
      // L: tile to the group-local crossbar at the quadrant centre.
      for (uint32_t t = 0; t < n; ++t) {
        const uint32_t g = t / tpg;
        both_ways(fp.tile_center_grouped(t), fp.group_center(g),
                  WireKind::kTileToGroup);
      }
      // N/NE/E: one butterfly per ordered group pair, placed at the midpoint
      // of the two group centres (the diagonal pairs cross the die centre).
      for (uint32_t g = 0; g < ng; ++g) {
        for (uint32_t i = 1; i < ng; ++i) {
          const uint32_t h = (g + i) % ng;
          const Point cg = fp.group_center(g);
          const Point ch = fp.group_center(h);
          const Point hub{(cg.x + ch.x) / 2, (cg.y + ch.y) / 2};
          for (uint32_t j = 0; j < tpg; ++j) {
            const uint32_t src = g * tpg + j;
            const uint32_t dst = h * tpg + j;
            wires.push_back({fp.tile_center_grouped(src), hub, request_bits,
                             WireKind::kGroupToGroup});
            wires.push_back({hub, fp.tile_center_grouped(dst), request_bits,
                             WireKind::kGroupToGroup});
            // Response network of this direction pair.
            wires.push_back({fp.tile_center_grouped(dst), hub, response_bits,
                             WireKind::kGroupToGroup});
            wires.push_back({hub, fp.tile_center_grouped(src), response_bits,
                             WireKind::kGroupToGroup});
          }
        }
      }
      break;
    }
  }
  return wires;
}

double total_bit_mm(const std::vector<WireBundle>& wires) {
  double s = 0;
  for (const auto& w : wires) s += w.bit_mm();
  return s;
}

}  // namespace mempool::physical
