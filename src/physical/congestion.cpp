#include "physical/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.hpp"

namespace mempool::physical {

CongestionMap::CongestionMap(double die_mm, uint32_t cells_per_edge)
    : die_mm_(die_mm), dim_(cells_per_edge),
      cell_mm_(die_mm / cells_per_edge), cells_(dim_ * dim_, 0.0) {
  MEMPOOL_CHECK(die_mm > 0 && cells_per_edge >= 2);
}

void CongestionMap::add_segment(double x0, double y0, double x1, double y1,
                                uint32_t bits) {
  // Walk the segment in small steps, attributing length to each cell.
  const double len = std::abs(x1 - x0) + std::abs(y1 - y0);
  if (len <= 0) return;
  const int steps = std::max(1, static_cast<int>(len / (cell_mm_ / 4)));
  const double dx = (x1 - x0) / steps;
  const double dy = (y1 - y0) / steps;
  const double step_len = len / steps;
  for (int i = 0; i < steps; ++i) {
    const double x = x0 + (i + 0.5) * dx;
    const double y = y0 + (i + 0.5) * dy;
    auto cx = static_cast<int64_t>(x / cell_mm_);
    auto cy = static_cast<int64_t>(y / cell_mm_);
    cx = std::clamp<int64_t>(cx, 0, dim_ - 1);
    cy = std::clamp<int64_t>(cy, 0, dim_ - 1);
    cells_[static_cast<std::size_t>(cy) * dim_ + static_cast<std::size_t>(cx)] +=
        step_len * bits;
  }
}

void CongestionMap::route(const WireBundle& w) {
  // L-shape: horizontal leg at the source's y, then vertical leg.
  add_segment(w.a.x, w.a.y, w.b.x, w.a.y, w.bits);
  add_segment(w.b.x, w.a.y, w.b.x, w.b.y, w.bits);
}

void CongestionMap::route_all(const std::vector<WireBundle>& wires) {
  for (const auto& w : wires) route(w);
}

double CongestionMap::cell(uint32_t cx, uint32_t cy) const {
  MEMPOOL_CHECK(cx < dim_ && cy < dim_);
  return cells_[static_cast<std::size_t>(cy) * dim_ + cx];
}

double CongestionMap::max_cell() const {
  return *std::max_element(cells_.begin(), cells_.end());
}

double CongestionMap::center_demand() const {
  const uint32_t m = dim_ / 2;
  double s = 0;
  for (uint32_t cy = m - 1; cy <= m; ++cy) {
    for (uint32_t cx = m - 1; cx <= m; ++cx) {
      s += cell(cx, cy);
    }
  }
  return s;
}

double CongestionMap::total() const {
  double s = 0;
  for (double c : cells_) s += c;
  return s;
}

double CongestionMap::spread() const {
  const double n = static_cast<double>(cells_.size());
  double mean = total() / n;
  if (mean <= 0) return 0;
  double var = 0;
  for (double c : cells_) var += (c - mean) * (c - mean);
  var /= n;
  return std::sqrt(var) / mean;
}

std::vector<std::string> CongestionMap::ascii_map() const {
  const double mx = max_cell();
  std::vector<std::string> rows;
  for (uint32_t cy = 0; cy < dim_; ++cy) {
    std::string row;
    for (uint32_t cx = 0; cx < dim_; ++cx) {
      const double v = mx > 0 ? cell(cx, cy) / mx : 0;
      row.push_back(static_cast<char>('0' + std::min(9, static_cast<int>(v * 10))));
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace mempool::physical
