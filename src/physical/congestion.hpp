#pragma once
// Routing-congestion estimation: every wire bundle is routed as an L-shape
// (horizontal then vertical) over a uniform grid of routing cells; each cell
// accumulates the bit-width of every bundle crossing it. This reproduces the
// paper's qualitative congestion maps (Figure 9): Top1/Top4 pull all wiring
// toward the die centre, TopH spreads it across the quadrants.

#include <cstdint>
#include <vector>

#include "physical/wires.hpp"

namespace mempool::physical {

class CongestionMap {
 public:
  CongestionMap(double die_mm, uint32_t cells_per_edge);

  /// Route a bundle (L-shape: horizontal leg first) and accumulate demand.
  void route(const WireBundle& w);
  void route_all(const std::vector<WireBundle>& wires);

  double cell(uint32_t cx, uint32_t cy) const;
  uint32_t dim() const { return dim_; }

  /// Highest per-cell demand (bit·mm per cell).
  double max_cell() const;
  /// Demand summed over the central 2×2 cells — the region the paper
  /// identifies as the congestion bottleneck.
  double center_demand() const;
  /// Total routed demand.
  double total() const;
  /// Coefficient of variation of cell demand (lower = better spread).
  double spread() const;

  /// Coarse ASCII heat map for reports (rows of 0-9 digits).
  std::vector<std::string> ascii_map() const;

 private:
  void add_segment(double x0, double y0, double x1, double y1, uint32_t bits);

  double die_mm_;
  uint32_t dim_;
  double cell_mm_;
  std::vector<double> cells_;  // dim × dim, row-major
};

}  // namespace mempool::physical
