#pragma once
// Liveness DRC: channel-dependency-graph (CDG) deadlock analysis over the
// declared component graph, the static half of the liveness layer (the
// dynamic half is the engine's progress watchdog, Engine::set_stall_horizon).
//
// The CDG has one node per buffer and one edge u -> v per component c that
// externally reads u and externally writes v: draining u through c
// eventually requires free capacity in v. "External" collapses each
// component to its boundary ports — buffers a component both writes and
// consumes itself (a butterfly's internal layer staging) contribute no
// edges, so pipelines do not read as cycles. Two annotations refine the
// graph: GraphVisitor::sinks_unconditionally(u) deletes u's outgoing
// dependencies through that component (draining is never backpressured),
// and an edge into an unbounded buffer (capacity 0) is recorded as
// non-blocking. Rules D7-D9 run over this graph; verify/drc.hpp is the
// canonical rule statement and run_drc() includes them in every report.

#include <cstddef>
#include <string>
#include <vector>

namespace mempool {
class Engine;
}

namespace mempool::verify {

struct DrcReport;
struct GraphModel;

/// One channel dependency: draining `from` via component `via` requires
/// capacity in `to`. Non-blocking edges (unbounded target) participate in
/// the starvation rule D8 and the sharing lint D9 but cannot deadlock (D7).
struct CdgEdge {
  std::size_t from = 0;  ///< Index into Cdg::buffers.
  std::size_t to = 0;    ///< Index into Cdg::buffers.
  std::size_t via = 0;   ///< Component index (engine registration order).
  bool blocking = true;  ///< False when `to` is unbounded.
};

/// The extracted channel dependency graph (exposed for tests and tooling;
/// the checks themselves run through check_liveness_rules).
struct Cdg {
  std::vector<std::string> buffers;   ///< Diagnostic names (DRC convention).
  std::vector<std::size_t> capacity;  ///< Parallel to buffers; 0 = unbounded.
  std::vector<CdgEdge> edges;
};

/// Derive the CDG from @p engine's declared graph (components must be
/// registered; the engine is not stepped).
Cdg extract_cdg(const Engine& engine);

/// Append D7/D8/D9 violations found in @p g's dependency graph to
/// @p report. Called by run_drc(); standalone use only needs a built
/// GraphModel.
void check_liveness_rules(const GraphModel& g, DrcReport* report);

}  // namespace mempool::verify
