#pragma once
// Fabric DRC: an elaboration-time design-rule checker for the component
// graph. Runs between Cluster::build and cycle 0 — it walks the *declared*
// graph (Component::describe / Clocked::describe, sim/activity.hpp) and
// checks it against the engine's registration state and shard map. This
// header is the canonical statement of the structural invariants the
// scheduler equivalence proofs rest on; the engine/buffer comments reference
// it instead of restating them.
//
// Invariants (each is a rule the checker enforces):
//
//   D1 — every reachable *registered* elastic buffer is engine-registered.
//        A registered buffer latches staged pushes at the commit edge; if it
//        never reached add_clocked it has no commit-queue binding and a
//        staged packet would sit invisible forever (the bug only shows as a
//        hang). Combinational buffers are exempt — they have no staged state.
//
//   D2 — every written buffer has a consumer bound, and the consumer is a
//        registered component. The consumer is the wake target: a bufferful
//        of packets with nobody to wake is a silent stall under the
//        activity-driven scheduler (dense mode would happily poll it, which
//        is exactly the kind of divergence the DRC exists to rule out).
//
//   D3 — forward-only wake: every same-cycle edge points *forward* in
//        evaluation order. A combinational push and a terminal delivery are
//        visible within the cycle, so their consumer must evaluate after the
//        producer — this is what lets one sequential sweep per cycle be
//        exact. Backward edges are legal only through *registered* buffers,
//        whose effect is deferred to the commit edge (next cycle), so they
//        are exempt. Self-edges (a butterfly staging into its own next
//        layer) are exempt for the same reason the engine re-reads the wake
//        word: the component is still on the stack.
//
//   D4 — shard discipline: no same-cycle edge (combinational push, terminal
//        delivery, direct wake) crosses shards, and every cross-shard
//        registered edge is a *marked* shard boundary whose declared
//        consumer shard matches the consumer's actual shard. Boundaries are
//        what the sharded engine's mailbox/snapshot machinery keys on; an
//        unmarked cross-shard push would race the consumer lane and break
//        bit-identity (see also sim/drc_runtime.hpp, which catches the same
//        class at runtime when the static walk cannot see the edge).
//
//   D5 — the shard tagging is a true partition: every component's shard id
//        is in [0, num_shards) and no shard is empty (an empty shard means
//        the tagging and the lane layout disagree about the partition).
//
//   D6 — no dead logic: every described component either has self-generated
//        work (self_ticking), is woken by direct calls (wake_on_demand), is
//        the consumer of some written buffer, or is the target of a wake or
//        terminal edge. Anything else can never be woken: it is dead logic
//        or a forgotten wire. Components that declare nothing are *opaque*
//        and exempt — plugins gain nothing mandatory.
//
// Liveness rules (verify/liveness.hpp) run over the channel dependency
// graph (CDG) derived from the same walk: one node per buffer, one edge
// u -> v per component that externally reads u and externally writes v
// (draining u eventually needs capacity in v). Edges into unbounded buffers
// are non-blocking; a GraphVisitor::sinks_unconditionally(u) declaration
// deletes u's dependencies through that component.
//
//   D7 — no capacity-unbroken cycle in the CDG: a cycle of blocking edges
//        can reach a state where every buffer on it is full and every drain
//        waits on the next buffer's free space — classic channel deadlock,
//        which D1-D6 cannot see. Every dependency cycle must contain an
//        edge the hardware guarantees to sink (an unbounded stage or a
//        declared unconditional sink, e.g. the ideal response bridge).
//        Violations report the full cycle with buffer names and capacities.
//
//   D8 — no fixed-priority arbiter input on a dependency cycle: when the
//        traffic that drains a low-priority input loops through the
//        arbiter's own output, a steady preferred stream can starve it
//        forever (livelock). Components declare their policy via
//        GraphVisitor::arbitration; undeclared arbiters are assumed fair.
//
//   D9 — response paths must not share a buffer with the request paths
//        they depend on (protocol-deadlock lint): a component that must
//        emit a response to retire a request declares the pair via
//        GraphVisitor::couples / couples_buffer, and the checker verifies
//        the response's downstream buffers are disjoint from the request
//        side — otherwise requests can occupy exactly the space the
//        responses that would retire them need.
//
// Violations come back as a structured report (mempool.drc.v1 JSON via
// DrcReport::to_json, sorted by rule/component/edge/detail so artifacts are
// diffable) and are surfaced three ways: `--drc` on every bench
// (runner/bench_cli.hpp), automatically at Cluster construction in Debug
// builds, and as the arming pass of the MEMPOOL_DRC runtime checker. The
// dynamic complement of D7-D9 is the engine's deterministic progress
// watchdog (Engine::set_stall_horizon), which catches at runtime what the
// static walk cannot prove and reports `mempool.liveness.v1`.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mempool {
class Engine;
}

namespace mempool::verify {

/// One design-rule violation: which rule, which component (path/name), which
/// edge (producer -> consumer, when the rule concerns an edge), and a
/// human-readable explanation.
struct DrcViolation {
  std::string rule;       ///< "D1".."D9".
  std::string component;  ///< Offending component (or buffer consumer) name.
  std::string edge;       ///< "producer -> consumer" when edge-shaped, else "".
  std::string detail;     ///< What is wrong and why it matters.
};

struct DrcReport {
  std::vector<DrcViolation> violations;
  std::size_t components = 0;  ///< Described (non-opaque) + opaque components.
  std::size_t buffers = 0;     ///< Distinct buffers reached by declared edges.
  std::size_t edges = 0;       ///< Declared edges (data + terminal + wake).
  uint32_t num_shards = 0;     ///< Partition size the shard rules ran with.

  bool clean() const { return violations.empty(); }

  /// Per-case fragment of the mempool.drc.v1 schema:
  /// {clean, components, buffers, edges, violations:[{rule, component, edge,
  /// detail}]}.
  Json to_json() const;

  /// Multi-line human-readable summary ("DRC clean ..." or one line per
  /// violation), used by CHECK messages and the --drc CLI.
  std::string summary() const;
};

/// Walk the declared component graph of @p engine and check rules D1-D9
/// (structural rules plus the liveness rules of verify/liveness.hpp).
/// @p num_shards is the cluster's shard partition size (Cluster::num_shards);
/// pass 1 for unsharded graphs — D4/D5 then only check tag sanity.
/// Components must already be registered; the engine is not stepped.
/// Violations come back sorted by (rule, component, edge, detail).
DrcReport run_drc(const Engine& engine, uint32_t num_shards);

/// MEMPOOL_DRC arming pass: resolve every described buffer's consumer to its
/// component shard and bind it via Clocked::drc_bind_shard, so the runtime
/// shard-race detector (sim/drc_runtime.hpp) can check eval-phase accesses.
/// Harmless (and useless) in builds without MEMPOOL_DRC.
void arm_runtime_checker(const Engine& engine);

}  // namespace mempool::verify
