#include "verify/liveness.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <sstream>
#include <utility>

#include "verify/drc.hpp"
#include "verify/graph_model.hpp"

namespace mempool::verify {

namespace {

void add_liveness_violation(DrcReport* report, const char* rule,
                            std::string component, std::string edge,
                            std::string detail) {
  report->violations.push_back(
      {rule, std::move(component), std::move(edge), std::move(detail)});
}

/// CDG plus the adjacency views the rule checks walk.
struct DepGraph {
  Cdg cdg;
  std::vector<std::vector<std::size_t>> out;  ///< Dep adjacency (all edges).
  std::vector<std::vector<std::size_t>> in;   ///< Reverse dep adjacency.
  std::vector<std::vector<std::size_t>> blocking_out;  ///< D7 subgraph.
};

DepGraph build_dep_graph(const GraphModel& g) {
  DepGraph dep;
  const std::size_t nbuf = g.buffers.size();
  dep.cdg.buffers.resize(nbuf);
  dep.cdg.capacity.resize(nbuf);
  for (std::size_t b = 0; b < nbuf; ++b) {
    dep.cdg.buffers[b] = g.buffer_name(g.buffers[b]);
    // Undescribed clocked elements keep decl's default capacity 0
    // (unbounded): conservative — they can never anchor a D7 cycle.
    dep.cdg.capacity[b] = g.buffers[b].decl.capacity;
  }

  // Collapse every component to its boundary ports. External in: a buffer
  // the component reads that some *other* component writes (internal
  // staging, where the only writer is the reader itself, drops out).
  // External out: a buffer the component writes whose consumer is not the
  // component itself.
  const std::size_t ncomp = g.comps.size();
  std::vector<std::vector<std::size_t>> ext_in(ncomp);
  std::vector<std::vector<std::size_t>> ext_out(ncomp);
  for (std::size_t b = 0; b < nbuf; ++b) {
    const BufferNode& node = g.buffers[b];
    for (const auto& [reader, port] : node.readers) {
      (void)port;
      for (const auto& [writer, wport] : node.writers) {
        (void)wport;
        if (writer != reader) {
          ext_in[reader].push_back(b);
          break;
        }
      }
    }
    for (const auto& [writer, wport] : node.writers) {
      (void)wport;
      if (g.resolve(node.decl.consumer) != writer) {
        ext_out[writer].push_back(b);
      }
    }
  }
  for (std::size_t c = 0; c < ncomp; ++c) {
    auto dedupe = [](std::vector<std::size_t>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    dedupe(&ext_in[c]);
    dedupe(&ext_out[c]);
  }

  std::set<std::pair<std::size_t, const Clocked*>> sink_set(
      g.unconditional_sinks.begin(), g.unconditional_sinks.end());

  dep.out.resize(nbuf);
  dep.in.resize(nbuf);
  dep.blocking_out.resize(nbuf);
  for (std::size_t c = 0; c < ncomp; ++c) {
    for (const std::size_t u : ext_in[c]) {
      // A declared unconditional sink never backpressures its drain: the
      // component contributes no dependency out of u at all.
      if (sink_set.count({c, g.buffers[u].buf}) != 0) continue;
      for (const std::size_t v : ext_out[c]) {
        if (u == v) continue;
        dep.cdg.edges.push_back(
            {u, v, c, /*blocking=*/dep.cdg.capacity[v] != 0});
        dep.out[u].push_back(v);
        dep.in[v].push_back(u);
        if (dep.cdg.capacity[v] != 0) dep.blocking_out[u].push_back(v);
      }
    }
  }
  return dep;
}

/// Tarjan SCC (iterative), deterministic: nodes visited in index order.
std::vector<std::size_t> strongly_connected(
    const std::vector<std::vector<std::size_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<uint32_t> order(n, UINT32_MAX);
  std::vector<uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> scc(n, kNone);
  uint32_t next_order = 0;
  std::size_t num_scc = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (std::size_t s = 0; s < n; ++s) {
    if (order[s] != UINT32_MAX) continue;
    frames.push_back({s, 0});
    order[s] = low[s] = next_order++;
    stack.push_back(s);
    on_stack[s] = true;
    while (!frames.empty()) {
      const std::size_t v = frames.back().v;
      if (frames.back().edge < adj[v].size()) {
        const std::size_t w = adj[v][frames.back().edge++];
        if (order[w] == UINT32_MAX) {
          order[w] = low[w] = next_order++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], order[w]);
        }
      } else {
        if (low[v] == order[v]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = num_scc;
            if (w == v) break;
          }
          ++num_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return scc;
}

/// Per-SCC member counts (an SCC is cyclic iff it has >= 2 members; the
/// edge builder drops self-edges, so single-node cycles cannot occur).
std::vector<std::size_t> scc_sizes(const std::vector<std::size_t>& scc) {
  std::vector<std::size_t> sizes;
  for (const std::size_t id : scc) {
    if (id == kNone) continue;
    if (id >= sizes.size()) sizes.resize(id + 1, 0);
    ++sizes[id];
  }
  return sizes;
}

/// Shortest cycle through @p start inside its SCC of @p adj (BFS back to
/// start). @p start must be in a cyclic SCC reachable over @p adj.
std::vector<std::size_t> cycle_through(
    const std::vector<std::vector<std::size_t>>& adj,
    const std::vector<std::size_t>& scc, std::size_t start) {
  std::vector<std::size_t> parent(adj.size(), kNone);
  std::deque<std::size_t> queue;
  for (const std::size_t w : adj[start]) {
    if (scc[w] != scc[start] || parent[w] != kNone) continue;
    parent[w] = start;
    queue.push_back(w);
  }
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    if (v == start) break;
    for (const std::size_t w : adj[v]) {
      if (scc[w] != scc[start]) continue;
      if (w == start) {
        // Reconstruct start -> ... -> v -> start.
        std::vector<std::size_t> path{start};
        std::vector<std::size_t> rev;
        for (std::size_t p = v; p != start; p = parent[p]) rev.push_back(p);
        path.insert(path.end(), rev.rbegin(), rev.rend());
        path.push_back(start);
        return path;
      }
      if (parent[w] == kNone) {
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  return {start, start};  // Unreachable for a well-formed cyclic SCC.
}

std::string render_cycle(const Cdg& cdg, const std::vector<std::size_t>& path) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << cdg.buffers[path[i]];
    if (i + 1 != path.size()) {
      if (cdg.capacity[path[i]] == 0) {
        os << "(unbounded)";
      } else {
        os << "(cap " << cdg.capacity[path[i]] << ")";
      }
    }
  }
  return os.str();
}

/// D7: every dependency cycle must contain a non-blocking edge (unbounded
/// target or declared unconditional sink). A cycle of blocking edges can
/// reach a state where every buffer is full and every drain waits on the
/// next buffer's capacity: classic channel deadlock.
void check_capacity_cycles(const DepGraph& dep, DrcReport* report) {
  const std::vector<std::size_t> scc = strongly_connected(dep.blocking_out);
  const std::vector<std::size_t> sizes = scc_sizes(scc);
  std::set<std::size_t> reported;
  for (std::size_t b = 0; b < dep.cdg.buffers.size(); ++b) {
    const std::size_t id = scc[b];
    if (id == kNone || sizes[id] < 2 || reported.count(id) != 0) continue;
    reported.insert(id);
    const std::vector<std::size_t> path =
        cycle_through(dep.blocking_out, scc, b);
    std::ostringstream os;
    os << "capacity-unbroken dependency cycle over " << sizes[id]
       << " buffers: every drain on the cycle waits on the next buffer's "
          "free space, so one full lap of in-flight packets wedges the "
          "fabric; break it with an unbounded stage, an unconditional sink "
          "(GraphVisitor::sinks_unconditionally), or a topology change";
    add_liveness_violation(report, "D7", dep.cdg.buffers[b],
                           render_cycle(dep.cdg, path), os.str());
  }
}

/// D8: a fixed-priority arbiter input on a dependency cycle is a starvation
/// risk — the traffic that refills it loops through the arbiter's own
/// output, so a steady high-priority stream can defer it forever.
void check_starvation(const GraphModel& g, const DepGraph& dep,
                      DrcReport* report) {
  const std::vector<std::size_t> scc = strongly_connected(dep.out);
  const std::vector<std::size_t> sizes = scc_sizes(scc);
  std::set<std::pair<std::size_t, std::size_t>> reported;  // (comp, buffer)
  for (const CdgEdge& e : dep.cdg.edges) {
    if (!g.comps[e.via].fixed_priority) continue;
    if (scc[e.from] == kNone || sizes[scc[e.from]] < 2) continue;
    if (!reported.insert({e.via, e.from}).second) continue;
    std::ostringstream os;
    os << "fixed-priority arbiter input '" << dep.cdg.buffers[e.from]
       << "' sits on a dependency cycle: the traffic that drains it competes "
          "with traffic the arbiter prefers, and the preferred stream is fed "
          "from the arbiter's own output — a steady stream starves this "
          "input forever; use round-robin arbitration or break the cycle";
    add_liveness_violation(report, "D8", g.comp_name(e.via),
                           dep.cdg.buffers[e.from], os.str());
  }
}

/// D9: the response path a request coupling depends on must not share a
/// buffer with the request path — a shared buffer lets requests occupy the
/// space responses need to retire those very requests (protocol deadlock).
void check_protocol_sharing(const GraphModel& g, const DepGraph& dep,
                            DrcReport* report) {
  // Nodes reachable from @p start over @p adj; start itself is included
  // only when a cycle leads back to it.
  auto closure = [&](std::size_t start,
                     const std::vector<std::vector<std::size_t>>& adj) {
    std::vector<bool> reached(adj.size(), false);
    std::deque<std::size_t> queue{start};
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      for (const std::size_t w : adj[v]) {
        if (reached[w]) continue;
        reached[w] = true;
        queue.push_back(w);
      }
    }
    return reached;
  };

  for (const Coupling& c : g.couplings) {
    const auto req_it = g.buffer_of.find(c.req);
    const auto resp_it = g.buffer_of.find(c.resp);
    if (req_it == g.buffer_of.end() || resp_it == g.buffer_of.end()) continue;
    const std::size_t req = req_it->second;
    const std::size_t resp = resp_it->second;
    // Downstream of the response vs. the request path (everything that
    // feeds the request buffer, plus the buffer itself).
    const std::vector<bool> resp_fwd = closure(resp, dep.out);
    std::vector<bool> req_side = closure(req, dep.in);
    req_side[req] = true;
    std::vector<std::size_t> shared;
    for (std::size_t b = 0; b < resp_fwd.size(); ++b) {
      if (b != resp && resp_fwd[b] && req_side[b]) shared.push_back(b);
    }
    if (shared.empty()) continue;
    std::vector<std::string> names;
    names.reserve(shared.size());
    for (const std::size_t b : shared) names.push_back(dep.cdg.buffers[b]);
    std::sort(names.begin(), names.end());
    std::ostringstream os;
    os << "response path of coupling '" << c.label
       << "' shares buffer(s) with the request path it depends on [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) os << ", ";
      os << names[i];
    }
    os << "]: requests can fill the shared space and block the responses "
          "that would retire them — give responses a dedicated network or "
          "declare an unconditional sink on the shared stage";
    add_liveness_violation(
        report, "D9", g.comp_name(c.comp),
        dep.cdg.buffers[req] + " -> " + dep.cdg.buffers[resp], os.str());
  }
}

}  // namespace

Cdg extract_cdg(const Engine& engine) {
  GraphModel g;
  g.build(engine);
  return build_dep_graph(g).cdg;
}

void check_liveness_rules(const GraphModel& g, DrcReport* report) {
  const DepGraph dep = build_dep_graph(g);
  check_capacity_cycles(dep, report);
  check_starvation(g, dep, report);
  check_protocol_sharing(g, dep, report);
}

}  // namespace mempool::verify
