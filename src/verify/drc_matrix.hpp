#pragma once
// DRC sweep over the plugin registries: elaborate every registered fabric
// topology × memory system × engine mode (no cycles are stepped — the DRC is
// purely an elaboration-time lint) and run the design-rule checker
// (verify/drc.hpp) on each. Backs the `--drc` flag every bench exposes
// through runner/bench_cli.hpp and the CI design-rule gate.

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "sim/shard.hpp"
#include "verify/drc.hpp"

namespace mempool::verify {

/// Elaborate one (topology, memory, engine-mode) combination and lint it.
/// @p mini selects the plugin's smallest valid configuration (fast unit
/// tests) instead of the full-scale paper configuration (CLI / CI).
DrcReport check_topology(const std::string& topology, const std::string& memory,
                         EngineMode mode, bool mini);

/// Run the DRC across the full registry cross-product. Returns the
/// mempool.drc.v1 document:
///   {schema: "mempool.drc.v1", clean, cases: [{topology, memory, engine,
///    num_shards, components, buffers, edges, violations: [...]}]}
/// @p clean_out (optional) receives whether every case was violation-free.
Json drc_matrix_report(bool mini, bool* clean_out = nullptr);

}  // namespace mempool::verify
