#pragma once
// Internal to verify/: the declared-graph model shared by the structural DRC
// (drc.cpp, rules D1-D6), the liveness DRC (liveness.cpp, rules D7-D9), and
// the MEMPOOL_DRC arming pass. One GraphVisitor walk over the engine's
// component list assembles components, buffers (with their BufferDecl facts),
// direct edges, and the liveness annotations (request/response couplings,
// unconditional sinks, arbitration fairness). Not part of the public verify
// API — include verify/drc.hpp or verify/liveness.hpp instead.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/engine.hpp"

namespace mempool::verify {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Everything the walk learns about one buffer (a Clocked element reached by
/// declared data edges, or registered with the engine directly).
struct BufferNode {
  const Clocked* buf = nullptr;
  bool described = false;  ///< buffer_info was emitted (ElasticBuffer).
  BufferDecl decl;
  std::vector<std::pair<std::size_t, std::string>> writers;  ///< (comp, label)
  std::vector<std::pair<std::size_t, std::string>> readers;  ///< (comp, label)
};

/// Everything the walk learns about one component.
struct CompNode {
  bool opaque = true;  ///< describe() declared nothing at all.
  bool self_ticking = false;
  bool wake_on_demand = false;
  bool wake_target = false;      ///< Some component wakes() it.
  bool terminal_target = false;  ///< Some component delivers into it.
  bool fixed_priority = false;   ///< Declared arbitration(kFixedPriority).
};

/// Same-cycle direct edge (terminal delivery or wake call).
struct DirectEdge {
  std::size_t src = 0;
  const Wakeable* target = nullptr;
  std::string label;
};

/// Request/response coupling: draining `req` (via component `comp`)
/// eventually requires pushing into `resp`. Terminal responses are dropped
/// at declaration time — they cannot be backpressured, so they cannot
/// deadlock.
struct Coupling {
  std::size_t comp = 0;
  const Clocked* req = nullptr;
  const Clocked* resp = nullptr;
  std::string label;
};

/// The declared graph, assembled by one GraphVisitor walk over the engine's
/// component list.
struct GraphModel : GraphVisitor {
  const Engine* engine = nullptr;
  std::size_t current = 0;  ///< Component whose describe() is on the stack.

  std::vector<CompNode> comps;
  std::unordered_map<const Wakeable*, std::size_t> comp_of;  ///< As Wakeable.
  std::vector<BufferNode> buffers;
  std::unordered_map<const Clocked*, std::size_t> buffer_of;
  std::vector<DirectEdge> terminals;
  std::vector<DirectEdge> wake_edges;
  std::vector<Coupling> couplings;
  /// (component, buffer) pairs the component drains unconditionally.
  std::vector<std::pair<std::size_t, const Clocked*>> unconditional_sinks;
  std::size_t edge_count = 0;

  /// Buffer whose describe() is currently on the stack (phase B), or kNone.
  std::size_t current_buffer = kNone;

  std::size_t buffer_index(const Clocked* buf) {
    auto [it, inserted] = buffer_of.try_emplace(buf, buffers.size());
    if (inserted) {
      buffers.emplace_back();
      buffers.back().buf = buf;
    }
    return it->second;
  }

  // --- GraphVisitor ----------------------------------------------------------
  void reads(const Clocked* buf, std::string_view label) override {
    if (buf == nullptr) return;
    comps[current].opaque = false;
    buffers[buffer_index(buf)].readers.emplace_back(current,
                                                    std::string(label));
    ++edge_count;
  }
  void writes(const PacketSink* sink, std::string_view label) override {
    if (sink == nullptr) return;
    comps[current].opaque = false;
    if (const Clocked* buf = sink->drc_buffer()) {
      writes_buffer(buf, label);
      return;
    }
    if (const Wakeable* target = sink->drc_terminal()) {
      writes_terminal(target, label);
      return;
    }
    // Sink resolves to neither a buffer nor a terminal: opaque endpoint
    // (custom plugin sink); nothing to check.
  }
  void writes_buffer(const Clocked* buf, std::string_view label) override {
    if (buf == nullptr) return;
    comps[current].opaque = false;
    buffers[buffer_index(buf)].writers.emplace_back(current,
                                                    std::string(label));
    ++edge_count;
  }
  void writes_terminal(const Wakeable* target,
                       std::string_view label) override {
    if (target == nullptr) return;
    comps[current].opaque = false;
    terminals.push_back({current, target, std::string(label)});
    ++edge_count;
  }
  void wakes(const Wakeable* target, std::string_view label) override {
    if (target == nullptr) return;
    comps[current].opaque = false;
    wake_edges.push_back({current, target, std::string(label)});
    ++edge_count;
  }
  void self_ticking() override {
    comps[current].opaque = false;
    comps[current].self_ticking = true;
  }
  void wake_on_demand() override {
    comps[current].opaque = false;
    comps[current].wake_on_demand = true;
  }

  // --- liveness annotations --------------------------------------------------
  void couples(const Clocked* req, const PacketSink* resp,
               std::string_view label) override {
    if (req == nullptr || resp == nullptr) return;
    // Terminal responses (drc_terminal) are always accepted, so the coupling
    // cannot participate in a deadlock — drop it here.
    if (const Clocked* buf = resp->drc_buffer()) {
      couples_buffer(req, buf, label);
    }
  }
  void couples_buffer(const Clocked* req, const Clocked* resp,
                      std::string_view label) override {
    if (req == nullptr || resp == nullptr) return;
    buffer_index(req);
    buffer_index(resp);
    couplings.push_back({current, req, resp, std::string(label)});
  }
  void sinks_unconditionally(const Clocked* buf,
                             std::string_view /*label*/) override {
    if (buf == nullptr) return;
    buffer_index(buf);
    unconditional_sinks.emplace_back(current, buf);
  }
  void arbitration(ArbiterFairness fairness) override {
    comps[current].fixed_priority =
        fairness == ArbiterFairness::kFixedPriority;
  }

  void buffer_info(const BufferDecl& decl) override {
    if (current_buffer == kNone) return;
    buffers[current_buffer].described = true;
    buffers[current_buffer].decl = decl;
  }

  // --- walk ------------------------------------------------------------------
  void build(const Engine& e) {
    engine = &e;
    const std::vector<Component*>& list = e.components();
    comps.resize(list.size());
    comp_of.reserve(list.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
      comp_of.emplace(static_cast<const Wakeable*>(list[i]), i);
    }
    // Phase A: every component declares its edges.
    for (std::size_t i = 0; i < list.size(); ++i) {
      current = i;
      list[i]->describe(*this);
    }
    // Phase B: every buffer reached by an edge — plus every engine-registered
    // clocked element — reports its structural facts (mode, consumer,
    // boundary). Non-buffer clocked elements keep the no-op default and stay
    // opaque.
    for (const Clocked* c : e.clocked_elements()) buffer_index(c);
    for (std::size_t b = 0; b < buffers.size(); ++b) {
      current_buffer = b;
      buffers[b].buf->describe(*this);
    }
    current_buffer = kNone;
  }

  // --- lookups ---------------------------------------------------------------
  const std::string& comp_name(std::size_t i) const {
    return engine->components()[i]->name();
  }
  uint32_t comp_shard(std::size_t i) const {
    return engine->component_shards()[i];
  }
  /// Resolve a wake target back to a registered component, kNone otherwise.
  std::size_t resolve(const Wakeable* w) const {
    const auto it = comp_of.find(w);
    return it == comp_of.end() ? kNone : it->second;
  }
  /// Diagnostic name for a buffer: its consumer's perspective.
  std::string buffer_name(const BufferNode& node) const {
    const std::size_t c = resolve(node.decl.consumer);
    std::string label = "?";
    if (c != kNone) {
      label = comp_name(c);
    }
    for (const auto& [reader, port] : node.readers) {
      return comp_name(reader) + "." + port;
    }
    return label + ".<in>";
  }
};

}  // namespace mempool::verify
