#include "verify/drc.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <tuple>
#include <utility>

#include "verify/graph_model.hpp"
#include "verify/liveness.hpp"

namespace mempool::verify {

namespace {

void add_violation(DrcReport* report, const char* rule, std::string component,
                   std::string edge, std::string detail) {
  report->violations.push_back(
      {rule, std::move(component), std::move(edge), std::move(detail)});
}

void check_buffer_rules(const GraphModel& g, uint32_t num_shards,
                        DrcReport* report) {
  for (const BufferNode& node : g.buffers) {
    if (!node.described) continue;  // Opaque clocked element: nothing to lint.
    const bool reachable = !node.writers.empty() || !node.readers.empty();
    const std::string bname = g.buffer_name(node);

    // D1: reachable registered buffer must participate in the commit phase.
    if (reachable && node.decl.registered &&
        !g.engine->is_registered_clocked(node.buf)) {
      add_violation(report, "D1", bname, "",
                    "registered elastic buffer is reachable but was never "
                    "add_clocked: staged pushes would never commit (silent "
                    "hang)");
    }

    const std::size_t consumer = g.resolve(node.decl.consumer);

    // D2: written buffers need a wake target that the engine evaluates.
    if (!node.writers.empty()) {
      if (node.decl.consumer == nullptr) {
        add_violation(report, "D2", bname,
                      g.comp_name(node.writers.front().first) + " -> ?",
                      "buffer is written but has no consumer bound "
                      "(set_consumer missing): pushes wake nobody");
      } else if (consumer == kNone) {
        add_violation(report, "D2", bname, "",
                      "buffer's consumer is not a registered component: its "
                      "wake flag is outside every scheduler's scan");
      }
    }
    if (consumer == kNone) continue;  // Edge rules need a resolved consumer.

    const uint32_t cshard = g.comp_shard(consumer);
    for (const auto& [writer, label] : node.writers) {
      if (writer == consumer) continue;  // Self-edge (internal staging).
      const std::string edge =
          g.comp_name(writer) + "[" + label + "] -> " + g.comp_name(consumer);

      // D3: combinational pushes are visible this cycle, so the consumer
      // must evaluate later than the producer (forward-only wake).
      if (!node.decl.registered && writer >= consumer) {
        std::ostringstream os;
        os << "combinational edge points backward in evaluation order ("
           << writer << " -> " << consumer
           << "): the consumer already evaluated this cycle, so the push "
              "would only be seen next cycle under the active scheduler but "
              "this cycle under dense — scheduler divergence";
        add_violation(report, "D3", g.comp_name(consumer), edge, os.str());
      }

      // D4: shard discipline along data edges.
      const uint32_t wshard = g.comp_shard(writer);
      if (wshard != cshard) {
        if (!node.decl.registered) {
          std::ostringstream os;
          os << "combinational path crosses shards (" << wshard << " -> "
             << cshard << "): an intra-cycle cross-shard effect breaks the "
             << "sharded engine's bit-identity";
          add_violation(report, "D4", g.comp_name(consumer), edge, os.str());
        } else if (!node.decl.shard_boundary) {
          std::ostringstream os;
          os << "cross-shard registered edge (" << wshard << " -> " << cshard
             << ") is not a marked shard boundary: the push would race the "
             << "consumer lane instead of going through its mailbox";
          add_violation(report, "D4", g.comp_name(consumer), edge, os.str());
        }
      }
      if (node.decl.shard_boundary && node.decl.consumer_shard != cshard &&
          num_shards > 1) {
        std::ostringstream os;
        os << "shard boundary declares consumer shard "
           << node.decl.consumer_shard << " but the consumer evaluates in "
           << "shard " << cshard << ": boundary pushes would land in the "
           << "wrong lane's mailbox";
        add_violation(report, "D4", g.comp_name(consumer), edge, os.str());
      }
    }
  }
}

void check_direct_edges(const GraphModel& g, DrcReport* report) {
  for (const DirectEdge& e : g.terminals) {
    const std::size_t dst = g.resolve(e.target);
    if (dst == kNone) continue;  // Non-component target: opaque endpoint.
    const std::string edge =
        g.comp_name(e.src) + "[" + e.label + "] -> " + g.comp_name(dst);
    if (e.src >= dst && e.src != dst) {
      std::ostringstream os;
      os << "terminal delivery points backward in evaluation order (" << e.src
         << " -> " << dst << "): same-cycle effects must be forward-only";
      add_violation(report, "D3", g.comp_name(dst), edge, os.str());
    }
    if (g.comp_shard(e.src) != g.comp_shard(dst)) {
      std::ostringstream os;
      os << "terminal delivery crosses shards (" << g.comp_shard(e.src)
         << " -> " << g.comp_shard(dst)
         << "): direct same-cycle calls must stay inside one shard";
      add_violation(report, "D4", g.comp_name(dst), edge, os.str());
    }
  }
  for (const DirectEdge& e : g.wake_edges) {
    const std::size_t dst = g.resolve(e.target);
    if (dst == kNone) continue;
    if (g.comp_shard(e.src) != g.comp_shard(dst)) {
      std::ostringstream os;
      os << "wake edge crosses shards (" << g.comp_shard(e.src) << " -> "
         << g.comp_shard(dst)
         << "): waking another lane's component mid-evaluation races its "
         << "wake-word scan";
      add_violation(report, "D4", g.comp_name(dst),
                    g.comp_name(e.src) + "[" + e.label + "] -> " +
                        g.comp_name(dst),
                    os.str());
    }
  }
}

void check_partition(const GraphModel& g, uint32_t num_shards,
                     DrcReport* report) {
  if (num_shards == 0) num_shards = 1;
  std::vector<std::size_t> population(num_shards, 0);
  for (std::size_t i = 0; i < g.comps.size(); ++i) {
    const uint32_t s = g.comp_shard(i);
    if (s >= num_shards) {
      std::ostringstream os;
      os << "component is tagged shard " << s << " but the cluster has only "
         << num_shards << " shard(s): not a partition";
      add_violation(report, "D5", g.comp_name(i), "", os.str());
    } else {
      ++population[s];
    }
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (population[s] == 0) {
      std::ostringstream os;
      os << "shard " << s << " has no components: the shard tagging and the "
         << "lane layout disagree about the partition";
      add_violation(report, "D5", "<cluster>", "", os.str());
    }
  }
}

void check_orphans(const GraphModel& g, DrcReport* report) {
  // Mark every component that some declared edge can feed or wake.
  std::vector<bool> fed(g.comps.size(), false);
  for (const BufferNode& node : g.buffers) {
    if (node.writers.empty()) continue;  // Nothing ever arrives.
    const std::size_t consumer = g.resolve(node.decl.consumer);
    if (consumer != kNone) fed[consumer] = true;
    for (const auto& [reader, label] : node.readers) {
      (void)label;
      fed[reader] = true;
    }
  }
  for (const DirectEdge& e : g.terminals) {
    const std::size_t dst = g.resolve(e.target);
    if (dst != kNone) fed[dst] = true;
  }
  for (const DirectEdge& e : g.wake_edges) {
    const std::size_t dst = g.resolve(e.target);
    if (dst != kNone) fed[dst] = true;
  }
  for (std::size_t i = 0; i < g.comps.size(); ++i) {
    const CompNode& c = g.comps[i];
    if (c.opaque || c.self_ticking || c.wake_on_demand || fed[i]) continue;
    add_violation(report, "D6", g.comp_name(i), "",
                  "described component has no wake source: no written buffer "
                  "feeds it, nothing delivers into it or wakes it, and it is "
                  "not self-ticking — dead logic or a forgotten wire");
  }
}

}  // namespace

Json DrcReport::to_json() const {
  Json j = Json::object();
  j.set("clean", clean());
  j.set("num_shards", num_shards);
  j.set("components", static_cast<uint64_t>(components));
  j.set("buffers", static_cast<uint64_t>(buffers));
  j.set("edges", static_cast<uint64_t>(edges));
  Json vs = Json::array();
  for (const DrcViolation& v : violations) {
    Json e = Json::object();
    e.set("rule", v.rule);
    e.set("component", v.component);
    e.set("edge", v.edge);
    e.set("detail", v.detail);
    vs.push_back(std::move(e));
  }
  j.set("violations", std::move(vs));
  return j;
}

std::string DrcReport::summary() const {
  std::ostringstream os;
  if (clean()) {
    os << "DRC clean: " << components << " components, " << buffers
       << " buffers, " << edges << " edges checked";
    return os.str();
  }
  os << "DRC: " << violations.size() << " violation(s)";
  for (const DrcViolation& v : violations) {
    os << "\n  [" << v.rule << "] " << v.component;
    if (!v.edge.empty()) os << " (" << v.edge << ")";
    os << ": " << v.detail;
  }
  return os.str();
}

DrcReport run_drc(const Engine& engine, uint32_t num_shards) {
  GraphModel g;
  g.build(engine);

  DrcReport report;
  report.num_shards = num_shards;
  report.components = g.comps.size();
  report.buffers = g.buffers.size();
  report.edges = g.edge_count;

  check_buffer_rules(g, num_shards, &report);
  check_direct_edges(g, &report);
  check_partition(g, num_shards, &report);
  check_orphans(g, &report);
  check_liveness_rules(g, &report);

  // Deterministic, diffable output: the walk discovers violations in
  // registration order, which shifts whenever a component is added — sort by
  // content instead so DRC artifacts can be compared across runs.
  std::stable_sort(report.violations.begin(), report.violations.end(),
                   [](const DrcViolation& a, const DrcViolation& b) {
                     return std::tie(a.rule, a.component, a.edge, a.detail) <
                            std::tie(b.rule, b.component, b.edge, b.detail);
                   });
  return report;
}

void arm_runtime_checker(const Engine& engine) {
  GraphModel g;
  g.build(engine);
  for (const BufferNode& node : g.buffers) {
    if (!node.described) continue;
    const std::size_t consumer = g.resolve(node.decl.consumer);
    if (consumer == kNone) continue;
    // describe() hands out const pointers (it must not mutate the graph), but
    // arming is an elaboration-time write to the same objects the engine owns
    // mutably — the const_cast is confined to this one hook.
    const_cast<Clocked*>(node.buf)->drc_bind_shard(
        static_cast<int32_t>(g.comp_shard(consumer)));
  }
}

}  // namespace mempool::verify
