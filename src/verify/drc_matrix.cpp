#include "verify/drc_matrix.hpp"

#include <deque>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "mem/imem.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"
#include "noc/monitor.hpp"
#include "sim/engine.hpp"
#include "traffic/generator.hpp"

namespace mempool::verify {

DrcReport check_topology(const std::string& topology, const std::string& memory,
                         EngineMode mode, bool mini) {
  // Mirror run_traffic_point's elaboration (traffic/experiment.cpp) up to —
  // but not including — engine.run(): the DRC lints the wired graph, it
  // never steps a cycle.
  ClusterConfig ccfg = mini ? ClusterConfig::mini(TopologySpec(topology))
                            : ClusterConfig::paper(TopologySpec(topology),
                                                   /*scrambling=*/true);
  ccfg.memory = MemorySpec(memory);
  ccfg.validate();

  InstrMem imem(4096);
  Engine engine;
  engine.set_dense(mode == EngineMode::kDense);
  Cluster cluster(ccfg, &imem);
  if (mode == EngineMode::kSharded) {
    // A null executor is valid (sequential fallback); the DRC never steps,
    // so no thread pool is spun up.
    engine.set_sharded(cluster.num_shards(), nullptr);
  }

  LatencyMonitor monitor(/*warmup=*/0);
  TrafficConfig tcfg;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<Client*> clients;
  gens.reserve(ccfg.num_cores());
  for (uint32_t c = 0; c < ccfg.num_cores(); ++c) {
    const auto tile = static_cast<uint16_t>(c / ccfg.cores_per_tile);
    gens.push_back(std::make_unique<TrafficGenerator>(
        "gen" + std::to_string(c), static_cast<uint16_t>(c), tile, ccfg,
        &cluster.layout(), &engine, tcfg, &monitor));
    clients.push_back(gens.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  return run_drc(engine, cluster.num_shards());
}

Json drc_matrix_report(bool mini, bool* clean_out) {
  bool clean = true;
  Json cases = Json::array();
  for (const std::string& topo : FabricRegistry::names()) {
    for (const std::string& mem : MemoryRegistry::names()) {
      for (const EngineMode mode :
           {EngineMode::kActive, EngineMode::kDense, EngineMode::kSharded}) {
        const DrcReport report = check_topology(topo, mem, mode, mini);
        clean = clean && report.clean();
        Json c = report.to_json();
        c.set("topology", topo);
        c.set("memory", mem);
        c.set("engine", engine_mode_name(mode));
        cases.push_back(std::move(c));
      }
    }
  }
  Json doc = Json::object();
  doc.set("schema", "mempool.drc.v1");
  doc.set("clean", clean);
  doc.set("cases", std::move(cases));
  if (clean_out != nullptr) *clean_out = clean;
  return doc;
}

}  // namespace mempool::verify
